"""Command-line interface of the reproduction.

Eight subcommands cover the main uses of the library without writing Python:

``repro-cpg info <system.json>``
    Parse a system description, validate it and print its characteristics
    (processes, conditions, alternative paths, architecture).

``repro-cpg schedule <system.json>``
    Generate the schedule table for a system description, print the per-path
    delays, the worst-case delay and (optionally) the full table.
    ``--json`` emits the same results machine-readably.

``repro-cpg fig1``
    Run the paper's Fig. 1 example end to end.

``repro-cpg sweep``
    A small randomised sweep reporting the Fig. 5 metric (delay increase) for
    the requested sizes and path counts.  ``--json`` emits the series.

``repro-cpg explore``
    Design-space exploration: search the mapping/priority space of a seeded
    random system, a system description file or the paper's Fig. 1 example
    (``--fig1``) with tabu search, simulated annealing or the NSGA-style
    genetic engine, using the schedule merger as the evaluator.
    ``--size-architecture`` adds add/remove-processor and add/remove-bus
    moves within declared bounds; ``--map-communications`` makes
    communication-to-bus mapping explorable (remap_comm/swap_bus moves and
    per-message bus pins); ``--pareto`` reports the non-dominated front over
    (delta_max, mean path delay, load imbalance, architecture cost, bus
    imbalance) instead of only the best scalar design point.
    ``--trace FILE`` writes a structured span/event trace of the run and
    ``--metrics`` collects wall-clock stage timings (see
    :mod:`repro.observability` and ``docs/observability.md``).

``repro-cpg trace-report <trace.jsonl>``
    Aggregate a trace written by ``explore --trace`` into per-stage and
    per-engine wall-time tables plus an event tally.

``repro-cpg serve``
    Run the exploration service: a long-running async HTTP/JSON job server
    whose tenants share LRU-bounded stage caches across requests (see
    :mod:`repro.service` and ``docs/service.md``).

``repro-cpg submit``
    Client for a running service: submit an exploration job (the same
    problem flags as ``explore``), wait for it and print the result —
    ``--json`` output is byte-identical to the one-shot
    ``explore --json`` for the same request.

The console script ``repro-cpg`` is installed with the package; the module can
also be run with ``python -m repro.cli``.  See ``docs/cli.md`` for the full
flag reference.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from dataclasses import replace
from typing import List, Optional, Sequence

from .analysis import (
    aggregate,
    format_pareto_front,
    format_schedule_table,
    format_series,
    format_trajectory,
)
from .data import load_fig1_example
from .architecture.architecture import ArchitectureError
from .architecture.mapping import MappingError
from .exploration import (
    CheckpointError,
    EvaluationPool,
    Explorer,
    FaultInjector,
    RetryPolicy,
    WorkerInitializationError,
)
from .generator import RandomSystemGenerator, paper_experiment_configs
from .graph import PathEnumerator
from .graph.cpg import GraphStructureError
from .io import SerializationError, load_system
from .observability import (
    JsonlSink,
    MetricsRegistry,
    TraceError,
    Tracer,
    aggregate_trace,
    format_trace_report,
    read_trace,
)
from .scheduling import ScheduleMerger
from .service import (
    ServiceClient,
    ServiceError,
    config_from_request,
    engines_for,
    explore_document,
    problem_and_origin,
    schedule_document,
    serve_forever,
    sweep_document,
)
from .service.jobs import DEFAULT_CACHE_MAX_BYTES, DEFAULT_CACHE_MAX_ENTRIES
from .simulation import validate_merge_result


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cpg",
        description="Scheduling of conditional process graphs (Eles et al., DATE 1998)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="describe a system description file")
    info.add_argument("system", help="path to a JSON system description")

    schedule = subparsers.add_parser(
        "schedule", help="generate the schedule table for a system description"
    )
    schedule.add_argument("system", help="path to a JSON system description")
    schedule.add_argument(
        "--table", action="store_true", help="print the full schedule table"
    )
    schedule.add_argument(
        "--validate",
        action="store_true",
        help="execute every alternative path on the run-time simulator",
    )
    schedule.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    subparsers.add_parser("fig1", help="run the paper's Fig. 1 example")

    sweep = subparsers.add_parser(
        "sweep", help="randomised delay-increase sweep (the Fig. 5 metric)"
    )
    sweep.add_argument("--nodes", type=int, nargs="+", default=[40])
    sweep.add_argument("--paths", type=int, nargs="+", default=[4, 8])
    sweep.add_argument("--graphs", type=int, default=2, help="graphs per setting")
    sweep.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    explore = subparsers.add_parser(
        "explore",
        help="search the mapping/priority design space with the merge "
        "scheduler as evaluator",
    )
    explore.add_argument(
        "system",
        nargs="?",
        default=None,
        help="optional JSON system description; omitted: a seeded random system",
    )
    explore.add_argument("--nodes", type=int, default=40, help="random-system size")
    explore.add_argument(
        "--paths", type=int, default=8, help="random-system alternative paths"
    )
    explore.add_argument("--seed", type=int, default=0, help="search + system seed")
    explore.add_argument(
        "--fig1",
        action="store_true",
        help="explore the paper's Fig. 1 example instead of a random system",
    )
    explore.add_argument(
        "--fig1-buses", type=int, default=1,
        help="with --fig1: number of shared buses of the platform (the "
        "paper's platform has 1; 2 makes communication mapping worthwhile)",
    )
    explore.add_argument(
        "--engine",
        choices=["tabu", "anneal", "genetic", "both", "all"],
        default="tabu",
        help="search engine ('both' runs tabu then annealing, 'all' adds the "
        "genetic engine; engines share one evaluation cache)",
    )
    explore.add_argument(
        "--cycles", type=int, default=40,
        help="cycle budget (generations for the genetic engine)",
    )
    explore.add_argument(
        "--neighbors", type=int, default=8, help="neighbours scored per cycle"
    )
    explore.add_argument(
        "--population", type=int, default=16,
        help="genetic-engine population size",
    )
    explore.add_argument(
        "--pareto",
        action="store_true",
        help="track and report the non-dominated front over "
        "(delta_max, mean path delay, load imbalance, architecture cost)",
    )
    explore.add_argument(
        "--size-architecture",
        action="store_true",
        help="enable architecture sizing: the search may add/remove "
        "programmable processors and buses within the declared bounds",
    )
    explore.add_argument(
        "--map-communications",
        action="store_true",
        help="explore communication-to-bus mapping: the search may pin "
        "individual messages to buses instead of accepting the derived "
        "assignment (adds remap_comm/swap_bus moves)",
    )
    explore.add_argument(
        "--bus-policy",
        choices=["least_index", "least_loaded"],
        default="least_index",
        help="derivation policy for messages without an explicit bus pin "
        "(default: least_index, the lexicographically least connecting bus)",
    )
    explore.add_argument(
        "--min-processors", type=int, default=1,
        help="sizing: lower bound on programmable processors",
    )
    explore.add_argument(
        "--max-processors", type=int, default=None,
        help="sizing: upper bound on programmable processors "
        "(default: seed count + 2)",
    )
    explore.add_argument(
        "--min-buses", type=int, default=1,
        help="sizing: lower bound on buses",
    )
    explore.add_argument(
        "--max-buses", type=int, default=None,
        help="sizing: upper bound on buses (default: seed count + 1)",
    )
    explore.add_argument(
        "--stall",
        type=int,
        default=0,
        help="stop after N cycles without improvement (0: disabled)",
    )
    explore.add_argument(
        "--workers",
        type=int,
        default=1,
        help="evaluation-pool workers (>1 scores neighbour batches in parallel)",
    )
    explore.add_argument(
        "--retries", type=int, default=None,
        help="resilience: attributable failures per candidate before it is "
        "quarantined with an infeasible sentinel cost (default 3 once the "
        "resilient path is armed)",
    )
    explore.add_argument(
        "--eval-timeout", type=float, default=None,
        help="resilience: per-candidate evaluation timeout in seconds for "
        "pooled execution (hung workers are restarted; default: no timeout)",
    )
    explore.add_argument(
        "--fault-crash-rate", type=float, default=0.0,
        help="fault injection: probability an evaluation attempt raises",
    )
    explore.add_argument(
        "--fault-hang-rate", type=float, default=0.0,
        help="fault injection: probability an evaluation attempt hangs "
        "(for --fault-hang-seconds)",
    )
    explore.add_argument(
        "--fault-exit-rate", type=float, default=0.0,
        help="fault injection: probability a worker process dies abruptly",
    )
    explore.add_argument(
        "--fault-hang-seconds", type=float, default=0.5,
        help="fault injection: duration of an injected hang",
    )
    explore.add_argument(
        "--fault-seed", type=int, default=None,
        help="fault injection: decision seed (default: --seed); decisions "
        "hash (seed, candidate, attempt), so results stay bit-identical "
        "to the fault-free run",
    )
    explore.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a versioned JSON checkpoint of the full engine state "
        "every --checkpoint-every cycles (single engine only)",
    )
    explore.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint if it exists (continues "
        "bit-identically; a missing file starts from scratch)",
    )
    explore.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="cycle period of checkpoint writes (default: every cycle)",
    )
    explore.add_argument(
        "--trajectory", action="store_true", help="print the full trajectory"
    )
    explore.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a structured span/event trace (JSON lines) of the run; "
        "aggregate it afterwards with 'repro-cpg trace-report FILE'",
    )
    explore.add_argument(
        "--metrics", action="store_true",
        help="collect wall-clock stage timings and report the per-stage "
        "breakdown (adds stage_seconds/wall_seconds to --json output)",
    )
    explore.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    trace_report = subparsers.add_parser(
        "trace-report",
        help="aggregate an 'explore --trace' file into per-stage and "
        "per-engine wall-time tables",
    )
    trace_report.add_argument(
        "trace", help="path to a JSONL trace written by 'explore --trace'"
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the exploration service (async HTTP/JSON job server with "
        "shared LRU stage caches; see docs/service.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8765,
        help="listening port (default 8765; 0 picks an ephemeral port, "
        "printed on startup)",
    )
    serve.add_argument(
        "--job-workers", type=int, default=2,
        help="concurrent exploration jobs (default 2)",
    )
    serve.add_argument(
        "--cache-max-entries", type=int, default=DEFAULT_CACHE_MAX_ENTRIES,
        help="per-scope stage-cache entry budget "
        f"(default {DEFAULT_CACHE_MAX_ENTRIES})",
    )
    serve.add_argument(
        "--cache-max-bytes", type=int, default=DEFAULT_CACHE_MAX_BYTES,
        help="per-scope stage-cache byte budget "
        f"(default {DEFAULT_CACHE_MAX_BYTES}, ~64 MiB of estimated entry "
        "sizes)",
    )

    submit = subparsers.add_parser(
        "submit",
        help="submit an exploration job to a running service and print the "
        "result (--json is byte-identical to one-shot 'explore --json')",
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="service base URL (default http://127.0.0.1:8765)",
    )
    submit.add_argument(
        "system",
        nargs="?",
        default=None,
        help="optional JSON system description to embed in the request; "
        "omitted: a seeded random system",
    )
    submit.add_argument("--nodes", type=int, default=40, help="random-system size")
    submit.add_argument(
        "--paths", type=int, default=8, help="random-system alternative paths"
    )
    submit.add_argument("--seed", type=int, default=0, help="search + system seed")
    submit.add_argument(
        "--fig1", action="store_true",
        help="explore the paper's Fig. 1 example instead of a random system",
    )
    submit.add_argument(
        "--fig1-buses", type=int, default=1,
        help="with --fig1: number of shared buses of the platform",
    )
    submit.add_argument(
        "--engine",
        choices=["tabu", "anneal", "genetic", "both", "all"],
        default="tabu",
        help="search engine (aliases as in 'explore')",
    )
    submit.add_argument(
        "--cycles", type=int, default=40,
        help="cycle budget (generations for the genetic engine)",
    )
    submit.add_argument(
        "--neighbors", type=int, default=8, help="neighbours scored per cycle"
    )
    submit.add_argument(
        "--population", type=int, default=16,
        help="genetic-engine population size",
    )
    submit.add_argument(
        "--stall", type=int, default=0,
        help="stop after N cycles without improvement (0: disabled)",
    )
    submit.add_argument(
        "--pareto", action="store_true",
        help="track and report the non-dominated front",
    )
    submit.add_argument(
        "--size-architecture", action="store_true",
        help="enable architecture sizing within the declared bounds",
    )
    submit.add_argument(
        "--map-communications", action="store_true",
        help="explore communication-to-bus mapping",
    )
    submit.add_argument(
        "--bus-policy",
        choices=["least_index", "least_loaded"],
        default="least_index",
        help="derivation policy for messages without an explicit bus pin",
    )
    submit.add_argument(
        "--min-processors", type=int, default=1,
        help="sizing: lower bound on programmable processors",
    )
    submit.add_argument(
        "--max-processors", type=int, default=None,
        help="sizing: upper bound on programmable processors",
    )
    submit.add_argument(
        "--min-buses", type=int, default=1,
        help="sizing: lower bound on buses",
    )
    submit.add_argument(
        "--max-buses", type=int, default=None,
        help="sizing: upper bound on buses",
    )
    submit.add_argument(
        "--no-wait", action="store_true",
        help="print the queued job id and return without polling",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0,
        help="seconds to wait for the job (default 600)",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="print the full result document (byte-identical to the "
        "one-shot 'explore --json' for the same request)",
    )

    return parser


def _command_info(path: str) -> int:
    system = load_system(path)
    system.graph.validate()
    expanded = system.expand()
    paths = PathEnumerator(expanded.graph).count()
    print(f"system        : {system.name}")
    print(f"processes     : {len(system.graph.ordinary_processes)} ordinary, "
          f"{len(expanded.communications)} communications after expansion")
    print(f"conditions    : {[str(c) for c in system.graph.conditions]}")
    print(f"alternative paths: {paths}")
    print("architecture  :")
    for line in system.architecture.describe().splitlines():
        print(f"  {line}")
    print("mapping       :")
    for line in system.mapping.describe().splitlines():
        print(f"  {line}")
    return 0


def _command_schedule(
    path: str, show_table: bool, validate: bool, as_json: bool = False
) -> int:
    system = load_system(path)
    system.graph.validate()
    expanded = system.expand()
    result = ScheduleMerger(
        expanded.graph, expanded.mapping, system.architecture
    ).merge()
    report = None
    if validate:
        report = validate_merge_result(
            expanded.graph, expanded.mapping, result, system.architecture
        )
    if as_json:
        print(json.dumps(
            schedule_document(system.name, result, report),
            indent=2,
            sort_keys=True,
        ))
        return 0
    print(f"alternative paths : {len(result.paths)}")
    for label, schedule in sorted(
        result.path_schedules.items(), key=lambda kv: -kv[1].delay
    ):
        print(f"  {str(label):<16} optimal delay {schedule.delay:g}")
    print(f"delta_M   = {result.delta_m:g}")
    print(f"delta_max = {result.delta_max:g} "
          f"(increase {result.delay_increase_percent:.2f}%)")
    if show_table:
        print()
        print(format_schedule_table(result.table))
    if report is not None:
        print(f"validated {report.paths_checked} paths; "
              f"simulated worst case {report.worst_case_delay:g}")
    return 0


def _command_fig1() -> int:
    example = load_fig1_example()
    result = ScheduleMerger(
        example.graph, example.expanded_mapping, example.architecture
    ).merge()
    for label, schedule in sorted(
        result.path_schedules.items(), key=lambda kv: -kv[1].delay
    ):
        print(f"  {str(label):<14} optimal delay {schedule.delay:g}")
    print(f"delta_M   = {result.delta_m:g}")
    print(f"delta_max = {result.delta_max:g}")
    report = validate_merge_result(
        example.graph, example.expanded_mapping, result, example.architecture
    )
    print(f"validated {report.paths_checked} alternative paths")
    return 0


def _command_sweep(
    nodes: List[int], paths: List[int], graphs: int, as_json: bool = False
) -> int:
    series = {}
    for size in nodes:
        configs = paper_experiment_configs(
            size, graphs, paths_options=paths, base_seed=size
        )
        by_paths = {}
        for config in configs:
            system = RandomSystemGenerator(config).generate()
            result = ScheduleMerger(
                system.graph, system.expanded_mapping, system.architecture
            ).merge()
            by_paths.setdefault(config.alternative_paths, []).append(result)
        series[f"{size} nodes"] = {
            count: aggregate(results).average_increase_percent
            for count, results in sorted(by_paths.items())
        }
    if as_json:
        print(json.dumps(
            sweep_document(series, graphs), indent=2, sort_keys=True
        ))
        return 0
    print(format_series(
        "average increase of delta_max over delta_M (%)", "paths", series
    ))
    return 0


def _request_from_arguments(arguments, system=None) -> dict:
    """The normalised explore-request document of one argparse namespace.

    The same shape :func:`repro.io.validate_explore_request` produces for
    service submissions, so ``explore``, ``submit`` and ``POST /jobs`` all
    build their runs from identical ingredients.  ``system`` carries the
    already-loaded description for the file-path case (the service embeds
    the payload instead).
    """
    sizing = None
    if arguments.size_architecture:
        sizing = {
            "min_processors": arguments.min_processors,
            "max_processors": arguments.max_processors,
            "min_buses": arguments.min_buses,
            "max_buses": arguments.max_buses,
        }
    request = {
        "fig1": arguments.fig1,
        "fig1_buses": arguments.fig1_buses,
        "seed": arguments.seed,
        "engine": arguments.engine,
        "cycles": arguments.cycles,
        "neighbors": arguments.neighbors,
        "population": arguments.population,
        "stall": arguments.stall,
        "pareto": arguments.pareto,
        "map_communications": arguments.map_communications,
        "bus_policy": arguments.bus_policy,
        "sizing": sizing,
    }
    # Exactly one problem source goes on the wire (the request schema
    # rejects ambiguity); the random spec is the fallback source.
    if system is not None:
        request["system"] = system
    elif not arguments.fig1:
        request["random"] = {"nodes": arguments.nodes, "paths": arguments.paths}
    return request


def _command_explore(arguments) -> int:
    if arguments.fig1 and arguments.system is not None:
        print(
            "error: --fig1 and a system description file are mutually "
            "exclusive; pass one problem source",
            file=sys.stderr,
        )
        return 2
    system = (
        load_system(arguments.system) if arguments.system is not None else None
    )
    request = _request_from_arguments(arguments, system=system)
    problem, origin = problem_and_origin(
        request,
        origin=arguments.system if arguments.system is not None else None,
    )
    config = replace(
        config_from_request(request),
        checkpoint_every=arguments.checkpoint_every,
    )
    engines = engines_for(arguments.engine)
    if arguments.checkpoint is not None and len(engines) > 1:
        print(
            "error: --checkpoint records the state of one engine; "
            f"--engine {arguments.engine} runs several (pick one engine)",
            file=sys.stderr,
        )
        return 2
    if arguments.resume and arguments.checkpoint is None:
        print("error: --resume requires --checkpoint PATH", file=sys.stderr)
        return 2

    injector = None
    if (
        arguments.fault_crash_rate > 0
        or arguments.fault_hang_rate > 0
        or arguments.fault_exit_rate > 0
    ):
        injector = FaultInjector(
            seed=(
                arguments.fault_seed
                if arguments.fault_seed is not None
                else arguments.seed
            ),
            crash_rate=arguments.fault_crash_rate,
            hang_rate=arguments.fault_hang_rate,
            exit_rate=arguments.fault_exit_rate,
            hang_seconds=arguments.fault_hang_seconds,
        )
    retry = None
    if arguments.retries is not None or arguments.eval_timeout is not None:
        retry = RetryPolicy(
            max_attempts=(
                arguments.retries if arguments.retries is not None else 3
            ),
            timeout=arguments.eval_timeout,
        )
    elif injector is not None:
        # Faults without an explicit policy still need bounded retries.
        retry = RetryPolicy()

    tracer = None
    if arguments.trace is not None:
        tracer = Tracer(
            JsonlSink(arguments.trace), run_id=f"explore-seed{arguments.seed}"
        )
    metrics = MetricsRegistry() if arguments.metrics else None

    pool = None
    if arguments.workers > 1 or injector is not None or retry is not None:
        pool = EvaluationPool(
            problem,
            config.weights,
            workers=arguments.workers,
            retry=retry,
            fault_injector=injector,
            tracer=tracer,
            metrics=metrics,
        )
    try:
        explorer = Explorer(
            problem, config=config, pool=pool, tracer=tracer, metrics=metrics
        )
        results = [
            explorer.explore(
                engine,
                checkpoint=arguments.checkpoint,
                resume=arguments.resume,
            )
            for engine in engines
        ]
    finally:
        if pool is not None:
            pool.close()
        if tracer is not None:
            tracer.close()

    if arguments.json:
        print(json.dumps(
            explore_document(
                origin,
                arguments.seed,
                results,
                include_front=arguments.pareto,
                problem=problem,
            ),
            indent=2,
            sort_keys=True,
        ))
        return 0

    print(f"exploring {origin}")
    print(f"  processes {len(problem.movable_processes)}, "
          f"processors {len(problem.processor_names)}, "
          f"workers {pool.workers if pool else 1}")
    if arguments.checkpoint is not None:
        print(f"  checkpoint {arguments.checkpoint} "
              f"(every {config.checkpoint_every} cycle(s))")
    for result in results:
        if not result.initial.feasible:
            seed_text = "infeasible"
            verdict = (
                "feasible design point found"
                if result.best.feasible
                else "no feasible design point found"
            )
        else:
            seed_text = f"{result.initial.delta_max:g}"
            verdict = (
                f"improved {result.improvement_percent:.2f}%"
                if result.improved
                else "no improvement found (seed mapping kept)"
            )
        print(f"{result.engine:>7}: delta_max {seed_text} -> "
              f"{result.best.delta_max:g}  ({verdict})")
        print(f"         cycles {result.cycles}, evaluations {result.evaluations}, "
              f"cache hits {result.cache.hits} "
              f"({100.0 * result.cache.hit_rate:.0f}%), stop: {result.stop_reason}")
        if result.stages is not None:
            stages = result.stages
            print(f"         stages: expansions "
                  f"{stages.expansion_hits}/"
                  f"{stages.expansion_hits + stages.expansion_misses} hits, "
                  f"path schedules {stages.schedule_hits}/"
                  f"{stages.schedule_hits + stages.schedule_misses} hits "
                  f"({100.0 * stages.schedule_hit_rate:.0f}%)")
        if result.stage_seconds is not None:
            breakdown = ", ".join(
                f"{stage} {seconds:.3f}s"
                for stage, seconds in sorted(
                    result.stage_seconds.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ) or "no stages timed (process-mode workers are not instrumented)"
            wall = (
                f"{result.wall_seconds:.3f}s"
                if result.wall_seconds is not None
                else "-"
            )
            print(f"         timing: wall {wall}; stages (cumulative): "
                  f"{breakdown}")
        if result.resumed_from is not None:
            print(f"         resumed from checkpoint at cycle "
                  f"{result.resumed_from}")
        if result.resilience is not None and result.resilience.eventful:
            stats = result.resilience
            line = (f"         resilience: retries {stats.retries}, "
                    f"timeouts {stats.timeouts}, "
                    f"worker restarts {stats.worker_restarts}, "
                    f"quarantined {stats.quarantined}")
            if stats.degraded:
                line += " (degraded to in-process evaluation)"
            print(line)
        if arguments.map_communications and result.best.feasible:
            realised = problem.communications_for(result.best_candidate)
            per_bus = Counter(realised.values())
            distribution = ", ".join(
                f"{bus_name}: {count}" for bus_name, count in sorted(per_bus.items())
            ) or "no messages cross processors"
            pinned = len(result.best_candidate.communication_assignment)
            print(f"         communication mapping: {distribution} "
                  f"({pinned} pinned, bus imbalance "
                  f"{result.best.bus_imbalance:.3f})")
        if arguments.trajectory and result.trajectory:
            print(format_trajectory(
                f"  trajectory ({result.engine})", result.trajectory
            ))
        if arguments.pareto and result.front is not None:
            print(format_pareto_front(
                f"  Pareto front ({result.engine}): {len(result.front)} "
                "non-dominated trade-off points",
                result.front,
            ))
    return 0


def _command_trace_report(path: str) -> int:
    """Aggregate and print one trace file (the ``trace-report`` subcommand)."""
    records = read_trace(path)
    report = aggregate_trace(records)
    print(format_trace_report(report, source=path))
    return 0


def _command_serve(arguments) -> int:
    """Run the exploration service until interrupted (the ``serve`` command)."""
    return serve_forever(
        host=arguments.host,
        port=arguments.port,
        job_workers=arguments.job_workers,
        cache_max_entries=arguments.cache_max_entries,
        cache_max_bytes=arguments.cache_max_bytes,
    )


def _command_submit(arguments) -> int:
    """Submit one job to a running service (the ``submit`` command)."""
    if arguments.fig1 and arguments.system is not None:
        print(
            "error: --fig1 and a system description file are mutually "
            "exclusive; pass one problem source",
            file=sys.stderr,
        )
        return 2
    system_payload = None
    if arguments.system is not None:
        with open(arguments.system) as handle:
            system_payload = json.load(handle)
    request = _request_from_arguments(arguments, system=system_payload)
    client = ServiceClient(arguments.url, timeout=arguments.timeout)
    try:
        submitted = client.submit(request)
        job_id = submitted["job"]
        if arguments.no_wait:
            print(f"submitted {job_id} ({submitted['state']}) to {arguments.url}")
            print(f"poll with: GET {arguments.url}/jobs/{job_id}")
            return 0
        status = client.wait(job_id, timeout=arguments.timeout)
        document = client.result(job_id)
    except (ConnectionError, OSError) as error:
        print(
            f"error: cannot reach service at {arguments.url}: {error}",
            file=sys.stderr,
        )
        return 2
    if arguments.json:
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    shared = status.get("shared_cache", {})
    print(f"job {job_id} done: {document['problem']}")
    for result in document["results"]:
        print(f"{result['engine']:>7}: delta_max "
              f"{result['best']['delta_max']:g} "
              f"(cost {result['best']['cost']}, "
              f"stop: {result['stop_reason']})")
    print(f"best engine: {document['best_engine']}")
    print(f"shared stage cache [{status.get('cache_scope', '?')}]: "
          f"{shared.get('stage_hits', 0)} hits, "
          f"{shared.get('stage_misses', 0)} misses, "
          f"{shared.get('entries_at_start', 0)} entries pre-warmed by "
          f"earlier tenants, {shared.get('lru_evictions', 0)} evictions")
    return 0


def _dispatch(arguments) -> int:
    if arguments.command == "info":
        return _command_info(arguments.system)
    if arguments.command == "schedule":
        return _command_schedule(
            arguments.system, arguments.table, arguments.validate, arguments.json
        )
    if arguments.command == "fig1":
        return _command_fig1()
    if arguments.command == "sweep":
        return _command_sweep(
            arguments.nodes, arguments.paths, arguments.graphs, arguments.json
        )
    if arguments.command == "explore":
        return _command_explore(arguments)
    if arguments.command == "trace-report":
        return _command_trace_report(arguments.trace)
    if arguments.command == "serve":
        return _command_serve(arguments)
    if arguments.command == "submit":
        return _command_submit(arguments)
    raise AssertionError(f"unhandled command {arguments.command!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-cpg`` console script.

    User-input problems — an unreadable or malformed system description, an
    invalid model, a foreign checkpoint, workers that cannot start — are
    reported as one actionable ``error:`` line on stderr with exit status 2
    instead of a traceback.
    """
    arguments = _build_parser().parse_args(argv)
    try:
        return _dispatch(arguments)
    except FileNotFoundError as error:
        name = error.filename or error
        print(f"error: {name}: no such file", file=sys.stderr)
        return 2
    except SerializationError as error:
        print(f"error: invalid system description: {error}", file=sys.stderr)
        return 2
    except (GraphStructureError, ArchitectureError, MappingError) as error:
        print(f"error: invalid system: {error}", file=sys.stderr)
        return 2
    except CheckpointError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except TraceError as error:
        print(f"error: invalid trace: {error}", file=sys.stderr)
        return 2
    except WorkerInitializationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ServiceError as error:
        print(f"error: service request failed: {error}", file=sys.stderr)
        return 2
    except TimeoutError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
