"""Canonical JSON response documents, shared by the CLI and the service.

``repro-cpg serve`` promises that a served job's result document is
**byte-identical** to what the one-shot CLI prints for the same request
(same seed, engine and budget): the service is a deployment shape, not a
semantics change.  The only way to keep that promise honest is to build the
documents in exactly one place — these functions — and have both front-ends
(`repro.cli` and `repro.service.server`) call them.  Everything here is a
pure value-to-dict transform; serialisation policy (``json.dumps`` with
``indent=2, sort_keys=True``) stays with the caller.

Non-finite floats (the infeasible-candidate sentinel cost) become ``null``:
``json.dumps`` would otherwise emit the spec-invalid token ``Infinity``,
which strict RFC 8259 parsers (jq, JavaScript) reject.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..exploration import OBJECTIVE_NAMES


def finite(value: float):
    """A float fit for strict JSON: non-finite values become None."""
    return value if math.isfinite(value) else None


def front_dict(front) -> dict:
    """Serialise a ParetoFront: sorted, deterministic per seed."""
    points = []
    for point in front:
        entry = {
            "fingerprint": point.candidate.fingerprint,
            "objectives": dict(zip(OBJECTIVE_NAMES, point.objectives)),
            "priority_function": point.candidate.priority_function,
        }
        if point.candidate.platform:
            entry["platform"] = {
                "processors": list(point.candidate.platform_processors),
                "buses": list(point.candidate.platform_buses),
            }
        if point.candidate.communication_assignment:
            entry["communication_assignment"] = dict(
                point.candidate.communication_assignment
            )
        points.append(entry)
    return {"size": len(points), "points": points}


def explore_result_dict(result, include_front: bool = False, problem=None) -> dict:
    """Serialise one :class:`~repro.exploration.ExplorationResult`."""
    document = {
        "engine": result.engine,
        "initial": {
            "feasible": result.initial.feasible,
            "delta_max": result.initial.delta_max,
            "delta_m": result.initial.delta_m,
            "cost": finite(result.initial.cost),
        },
        "best": {
            "fingerprint": result.best_candidate.fingerprint,
            "feasible": result.best.feasible,
            "delta_max": result.best.delta_max,
            "delta_m": result.best.delta_m,
            "cost": finite(result.best.cost),
            "mean_path_delay": result.best.mean_path_delay,
            "load_imbalance": result.best.load_imbalance,
            "architecture_cost": result.best.architecture_cost,
            "bus_imbalance": result.best.bus_imbalance,
            "priority_function": result.best_candidate.priority_function,
            "assignment": dict(result.best_candidate.assignment),
        },
        "improvement_percent": result.improvement_percent,
        "cycles": result.cycles,
        "evaluations": result.evaluations,
        "stop_reason": result.stop_reason,
        "cache": {
            "hits": result.cache.hits,
            "misses": result.cache.misses,
            "hit_rate": result.cache.hit_rate,
        },
        "stages": (
            {
                "expansion_hits": result.stages.expansion_hits,
                "expansion_misses": result.stages.expansion_misses,
                "expansion_hit_rate": result.stages.expansion_hit_rate,
                "schedule_hits": result.stages.schedule_hits,
                "schedule_misses": result.stages.schedule_misses,
                "schedule_hit_rate": result.stages.schedule_hit_rate,
            }
            if result.stages is not None
            else None
        ),
        "resilience": (
            {
                "retries": result.resilience.retries,
                "timeouts": result.resilience.timeouts,
                "worker_restarts": result.resilience.worker_restarts,
                "quarantined": result.resilience.quarantined,
                "injected": result.resilience.injected,
                "integrity_evictions": result.resilience.integrity_evictions,
                "degraded": result.resilience.degraded,
            }
            if result.resilience is not None
            else None
        ),
        "resumed_from": result.resumed_from,
        # Timing and batch stats (all None unless metrics are on: identical
        # invocations must keep producing byte-identical JSON).
        "stage_seconds": result.stage_seconds,
        "wall_seconds": result.wall_seconds,
        "batch": result.batch,
        "trajectory": [
            {
                "cycle": point.cycle,
                "move": point.move,
                "cost": finite(point.cost),
                "best_cost": finite(point.best_cost),
                "accepted": point.accepted,
            }
            for point in result.trajectory
        ],
    }
    if problem is not None and problem.map_communications:
        best = document["best"]
        best["communication_pins"] = dict(
            result.best_candidate.communication_assignment
        )
        if result.best.feasible:
            # The realised mapping: the bus every message actually rides
            # (explicit pins plus policy-derived picks).
            best["communication_mapping"] = problem.communications_for(
                result.best_candidate
            )
    if include_front and result.front is not None:
        document["front"] = front_dict(result.front)
    return document


def explore_document(
    origin: str,
    seed: int,
    results: Sequence,
    include_front: bool = False,
    problem=None,
) -> dict:
    """The full multi-engine exploration document (the CLI's --json shape)."""
    best = min(results, key=lambda r: (r.best.cost, r.engine))
    return {
        "problem": origin,
        "seed": seed,
        "results": [
            explore_result_dict(result, include_front=include_front, problem=problem)
            for result in results
        ],
        "best_engine": best.engine,
    }


def schedule_document(system_name: str, result, report=None) -> dict:
    """The ``repro-cpg schedule --json`` document for one merge result."""
    document = {
        "system": system_name,
        "alternative_paths": len(result.paths),
        "path_delays": {
            str(label): schedule.delay
            for label, schedule in sorted(
                result.path_schedules.items(), key=lambda kv: str(kv[0])
            )
        },
        "delta_m": result.delta_m,
        "delta_max": result.delta_max,
        "delay_increase_percent": result.delay_increase_percent,
    }
    if report is not None:
        document["validation"] = {
            "paths_checked": report.paths_checked,
            "worst_case_delay": report.worst_case_delay,
        }
    return document


def sweep_document(series: dict, graphs: int) -> dict:
    """The ``repro-cpg sweep --json`` document for one sweep series."""
    return {
        "metric": "average increase of delta_max over delta_M (%)",
        "graphs_per_setting": graphs,
        "series": series,
    }
