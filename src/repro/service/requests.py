"""From a validated request document to an exploration run's ingredients.

The functions here are the single source of truth for how a request —
whether it arrived as ``repro-cpg explore`` flags or as a ``POST /jobs``
body — turns into an :class:`~repro.exploration.ExplorationProblem`, its
human-readable origin string, an :class:`~repro.exploration.ExplorationConfig`
and the engine list.  Both front-ends build their runs through this module,
which is what makes the service's byte-identity promise checkable: same
request, same ingredients, same result document.

Request documents are the normalised output of
:func:`repro.io.serialization.validate_explore_request`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..data import load_fig1_example
from ..exploration import (
    ArchitectureBounds,
    ExplorationConfig,
    ExplorationProblem,
)
from ..generator import generate_system
from ..io.serialization import SystemDescription, system_from_dict

#: Engine aliases that expand to several runs sharing one evaluation cache.
ENGINE_CHOICES = {
    "both": ["tabu", "anneal"],
    "all": ["tabu", "anneal", "genetic"],
}


def engines_for(engine: str) -> List[str]:
    """Expand an engine choice ('both'/'all' aliases included) to a run list."""
    return ENGINE_CHOICES.get(engine, [engine])


def bounds_from_request(request: Dict[str, Any]) -> Optional[ArchitectureBounds]:
    """The sizing bounds of a request, or None when sizing is off."""
    sizing = request.get("sizing")
    if sizing is None:
        return None
    return ArchitectureBounds(
        max_processors=sizing.get("max_processors"),
        min_processors=sizing.get("min_processors", 1),
        max_buses=sizing.get("max_buses"),
        min_buses=sizing.get("min_buses", 1),
    )


def problem_and_origin(
    request: Dict[str, Any], origin: Optional[str] = None
) -> Tuple[ExplorationProblem, str]:
    """Build the problem + origin string for one validated explore request.

    The origin strings are exactly the ones the one-shot CLI prints, so a
    served result document matches the CLI's byte for byte.  ``origin``
    overrides the derived string (the CLI passes the file path when the
    system came from disk; the service has no path and labels the payload by
    its system name instead).
    """
    bounds = bounds_from_request(request)
    if request["fig1"]:
        example = load_fig1_example(num_buses=request["fig1_buses"])
        problem = ExplorationProblem(
            example.process_graph,
            example.mapping,
            example.architecture,
            name="fig1",
            bounds=bounds,
            map_communications=request["map_communications"],
            bus_policy=request["bus_policy"],
        )
        derived = "the paper's Fig. 1 example"
        if request["fig1_buses"] != 1:
            derived += f" ({request['fig1_buses']} buses)"
    elif request.get("system") is not None:
        source = request["system"]
        system = (
            source
            if isinstance(source, SystemDescription)
            else system_from_dict(source)
        )
        system.graph.validate()
        problem = ExplorationProblem.from_system(
            system,
            bounds=bounds,
            map_communications=request["map_communications"],
            bus_policy=request["bus_policy"],
        )
        derived = f"submitted system {system.name!r}"
    else:
        spec = request["random"]
        generated = generate_system(
            spec["nodes"], spec["paths"], seed=request["seed"]
        )
        problem = ExplorationProblem.from_system(
            generated,
            bounds=bounds,
            map_communications=request["map_communications"],
            bus_policy=request["bus_policy"],
        )
        derived = (
            f"random system ({spec['nodes']} nodes, {spec['paths']} paths, "
            f"seed {request['seed']})"
        )
    return problem, origin if origin is not None else derived


def config_from_request(request: Dict[str, Any]) -> ExplorationConfig:
    """The search configuration of one validated explore request."""
    return ExplorationConfig(
        seed=request["seed"],
        max_cycles=request["cycles"],
        neighbors_per_cycle=request["neighbors"],
        stall_cycles=request["stall"],
        population_size=request["population"],
        track_front=request["pareto"],
    )
