"""Exploration-as-a-service: an async job server over shared stage caches.

``repro-cpg serve`` turns the one-shot exploration CLI into a long-running
HTTP/JSON service: clients POST explore requests (the pool JSON system
serialisation, the Fig. 1 example or a seeded random system), jobs run on a
small worker pool with request batching onto the
:class:`~repro.exploration.EvaluationPool`, and every job in the same
*stage scope* (same graph + architecture + bus policy, any name or seed
mapping) answers from one shared, LRU-bounded
:class:`~repro.exploration.StageCache` — so near-duplicate tenants reuse
each other's expansion and per-path schedule work across requests.

Guarantees:

* **Byte identity** — a served job's result document equals the one-shot
  ``repro-cpg explore --json`` output for the same request, byte for byte
  (same document builders, same serial evaluation shape).
* **Bounded memory** — shared caches carry entry- and byte-budgets with
  cost-aware LRU eviction; ``GET /cache`` reports occupancy and eviction
  counters per scope.
* **Stdlib only** — ``asyncio`` + a hand-rolled HTTP/1.1 parser on the
  server, :mod:`http.client` on the client.

See ``docs/service.md`` for the endpoint reference and examples.
"""

from .client import ServiceClient, ServiceError
from .documents import (
    explore_document,
    explore_result_dict,
    finite,
    front_dict,
    schedule_document,
    sweep_document,
)
from .jobs import (
    DEFAULT_CACHE_MAX_BYTES,
    DEFAULT_CACHE_MAX_ENTRIES,
    BatchLane,
    BatchingEvaluator,
    Job,
    JobManager,
    ScopedStageCaches,
)
from .requests import (
    ENGINE_CHOICES,
    bounds_from_request,
    config_from_request,
    engines_for,
    problem_and_origin,
)
from .server import (
    ExplorationService,
    RunningService,
    serve_forever,
    start_in_thread,
)

__all__ = [
    "BatchLane",
    "BatchingEvaluator",
    "DEFAULT_CACHE_MAX_BYTES",
    "DEFAULT_CACHE_MAX_ENTRIES",
    "ENGINE_CHOICES",
    "ExplorationService",
    "Job",
    "JobManager",
    "RunningService",
    "ScopedStageCaches",
    "ServiceClient",
    "ServiceError",
    "bounds_from_request",
    "config_from_request",
    "engines_for",
    "explore_document",
    "explore_result_dict",
    "finite",
    "front_dict",
    "problem_and_origin",
    "schedule_document",
    "serve_forever",
    "start_in_thread",
    "sweep_document",
]
