"""A small stdlib client for the exploration service.

Used by ``repro-cpg submit``, the service test suite and the load
benchmark.  The server side is hand-rolled asyncio; the client side just
needs a one-request-per-connection HTTP speaker, which
:mod:`http.client` already is.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit


class ServiceError(RuntimeError):
    """A non-2xx response from the service; carries the decoded document."""

    def __init__(self, status: int, document: Any) -> None:
        message = (
            document.get("error", f"HTTP {status}")
            if isinstance(document, dict)
            else f"HTTP {status}"
        )
        super().__init__(message)
        self.status = status
        self.document = document


class ServiceClient:
    """Talk to one running :class:`~repro.service.ExplorationService`."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {parts.scheme!r} (http only)")
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80
        self._timeout = timeout

    def request(
        self, method: str, path: str, document: Optional[Any] = None
    ) -> Tuple[int, Any]:
        """One HTTP round trip; returns (status, decoded JSON document)."""
        connection = HTTPConnection(self._host, self._port, timeout=self._timeout)
        try:
            body = None
            headers = {"Connection": "close"}
            if document is not None:
                body = json.dumps(document).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
            return response.status, json.loads(payload)
        finally:
            connection.close()

    def _ok(self, method: str, path: str, document: Optional[Any] = None) -> Any:
        status, decoded = self.request(method, path, document)
        if status >= 400:
            raise ServiceError(status, decoded)
        return decoded

    # -- convenience wrappers ------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._ok("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._ok("GET", "/stats")

    def cache_stats(self) -> Dict[str, Any]:
        return self._ok("GET", "/cache")

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """POST an explore request; returns the queued job's status document."""
        return self._ok("POST", "/jobs", request)

    def jobs(self) -> Dict[str, Any]:
        return self._ok("GET", "/jobs")

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._ok("GET", f"/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 300.0, interval: float = 0.05
    ) -> Dict[str, Any]:
        """Poll a job until done; returns the final status document.

        Raises :class:`ServiceError` if the job failed and TimeoutError if it
        is still running when ``timeout`` elapses.
        """
        deadline = time.monotonic() + timeout
        while True:
            document = self.status(job_id)
            if document["state"] == "done":
                return document
            if document["state"] == "failed":
                raise ServiceError(409, {"error": document.get("error")})
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {document['state']} "
                    f"after {timeout:g}s"
                )
            time.sleep(interval)

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._ok("GET", f"/jobs/{job_id}/result")

    def trajectory(self, job_id: str) -> Dict[str, Any]:
        return self._ok("GET", f"/jobs/{job_id}/trajectory")

    def front(self, job_id: str) -> Dict[str, Any]:
        return self._ok("GET", f"/jobs/{job_id}/front")

    def schedule(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._ok("POST", "/schedule", request)

    def sweep(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._ok("POST", "/sweep", request)

    def shutdown(self) -> Dict[str, Any]:
        return self._ok("POST", "/shutdown")
