"""The ``repro-cpg serve`` HTTP/JSON server: asyncio, stdlib-only.

A deliberately small HTTP/1.1 front-end over :mod:`repro.service.jobs` —
``asyncio.start_server`` plus a hand-rolled request parser, no
``http.server``, no third-party framework.  Every response is a JSON
document; every error is ``{"error": ...}`` with the
:class:`~repro.io.SerializationError` message naming the offending request
entry.  One connection carries one request (``Connection: close``), which
keeps the parser honest and the clients trivial.

Endpoints
---------
==========================  ====================================================
``GET  /healthz``           liveness probe
``GET  /stats``             requests/sec, per-route counters, job states,
                            batching rounds
``GET  /cache``             the shared stage caches: per-scope occupancy,
                            budgets, hit/miss and eviction counters
``POST /jobs``              submit an exploration job (body: the
                            ``validate_explore_request`` schema); answers 202
                            with the job id
``GET  /jobs``              list every job's status document
``GET  /jobs/<id>``         one job's status (state, scope, shared-cache slice)
``GET  /jobs/<id>/result``  the full exploration document (byte-identical to
                            the one-shot CLI for the same request on a cold
                            scope)
``GET  /jobs/<id>/trajectory``  per-engine search trajectories
``GET  /jobs/<id>/front``   per-engine Pareto fronts (pareto jobs only)
``POST /schedule``          synchronous schedule query (the ``schedule --json``
                            document)
``POST /sweep``             synchronous sweep query (the ``sweep --json``
                            document)
``POST /shutdown``          drain jobs and stop the server
==========================  ====================================================
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from ..architecture.architecture import ArchitectureError
from ..architecture.mapping import MappingError
from ..generator import RandomSystemGenerator, paper_experiment_configs
from ..graph.cpg import GraphStructureError
from ..analysis import aggregate
from ..io.serialization import (
    SerializationError,
    system_from_dict,
    validate_explore_request,
    validate_schedule_request,
    validate_sweep_request,
)
from ..observability import MetricsRegistry
from ..scheduling import ScheduleMerger
from ..simulation import validate_merge_result
from .documents import schedule_document, sweep_document
from .jobs import JobManager, ScopedStageCaches

#: Upper bound on request bodies; a system description this large is a
#: client bug, not a workload.
MAX_BODY_BYTES = 32 * 1024 * 1024
_MAX_HEADER_LINES = 64

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ExplorationService:
    """The long-running exploration service (state + asyncio front-end)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        job_workers: int = 2,
        cache_max_entries: Optional[int] = None,
        cache_max_bytes: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        from .jobs import DEFAULT_CACHE_MAX_ENTRIES, DEFAULT_CACHE_MAX_BYTES

        self._host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer
        caches = ScopedStageCaches(
            max_entries=(
                cache_max_entries
                if cache_max_entries is not None
                else DEFAULT_CACHE_MAX_ENTRIES
            ),
            max_bytes=(
                cache_max_bytes
                if cache_max_bytes is not None
                else DEFAULT_CACHE_MAX_BYTES
            ),
        )
        self._jobs = JobManager(
            caches=caches,
            workers=job_workers,
            metrics=self._metrics,
            tracer=tracer,
        )
        # Synchronous queries (schedule/sweep, request validation) run off
        # the event loop on this small pool so a heavy merge never stalls
        # the accept loop.
        self._query_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-query"
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._started_monotonic = time.monotonic()
        self._requests_total = 0
        self._requests_by_route: Dict[str, int] = {}
        self._counter_lock = threading.Lock()

    @property
    def jobs(self) -> JobManager:
        return self._jobs

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (``port`` is known afterwards)."""
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until ``POST /shutdown`` (or :meth:`request_shutdown`)."""
        assert self._server is not None and self._shutdown is not None
        async with self._server:
            await self._server.start_serving()
            await self._shutdown.wait()
        self._jobs.close()
        self._query_executor.shutdown(wait=True)

    def request_shutdown(self) -> None:
        """Trip the shutdown event (safe from any thread via the loop)."""
        if self._shutdown is not None:
            self._shutdown.set()

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        status, document = 500, {"error": "internal error"}
        try:
            parsed = await self._read_request(reader)
            if isinstance(parsed, tuple):
                method, path, body = parsed
                status, document = await self._route(method, path, body)
            else:
                status, document = 400, {"error": parsed}
        except SerializationError as error:
            status, document = 400, {"error": str(error)}
        except (GraphStructureError, ArchitectureError, MappingError) as error:
            status, document = 400, {"error": f"invalid system: {error}"}
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        except Exception as error:  # never leak a traceback to the socket
            status, document = 500, {"error": f"internal error: {error}"}
        payload = (
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        ).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        try:
            writer.write(head + payload)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
        if status == 200 and document.get("status") == "shutting down":
            self.request_shutdown()

    async def _read_request(self, reader):
        """Parse one request; returns (method, path, body) or an error string."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            raise ConnectionError("client went away")
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return f"malformed request line {request_line!r}"
        method, path, _version = parts
        content_length = 0
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return f"malformed Content-Length {value.strip()!r}"
        else:
            return "too many request headers"
        if content_length > MAX_BODY_BYTES:
            return f"request body exceeds {MAX_BODY_BYTES} bytes"
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return method, path, body

    def _count_request(self, route: str) -> None:
        with self._counter_lock:
            self._requests_total += 1
            self._requests_by_route[route] = (
                self._requests_by_route.get(route, 0) + 1
            )
        if self._metrics is not None:
            self._metrics.count("service.requests")
            self._metrics.gauge(
                "service.queue_depth", float(self._jobs.queue_depth())
            )

    # -- routing -------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        span = (
            self._tracer.span("service.request", method=method, path=path)
            if self._tracer is not None
            else None
        )
        try:
            status, document = await self._dispatch(method, path, body)
        finally:
            if span is not None:
                span.close()
        return status, document

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._count_request("/healthz")
            if method != "GET":
                return 405, {"error": "use GET /healthz"}
            return 200, {"status": "ok"}
        if path == "/stats":
            self._count_request("/stats")
            if method != "GET":
                return 405, {"error": "use GET /stats"}
            return 200, self._stats_document()
        if path == "/cache":
            self._count_request("/cache")
            if method != "GET":
                return 405, {"error": "use GET /cache"}
            return 200, self._jobs.caches.stats_document()
        if path == "/shutdown":
            self._count_request("/shutdown")
            if method != "POST":
                return 405, {"error": "use POST /shutdown"}
            return 200, {"status": "shutting down"}
        if path == "/schedule":
            self._count_request("/schedule")
            if method != "POST":
                return 405, {"error": "use POST /schedule"}
            document = _parse_json_body(body)
            return await self._in_executor(self._schedule_query, document)
        if path == "/sweep":
            self._count_request("/sweep")
            if method != "POST":
                return 405, {"error": "use POST /sweep"}
            document = _parse_json_body(body)
            return await self._in_executor(self._sweep_query, document)
        if path == "/jobs":
            self._count_request("/jobs")
            if method == "POST":
                document = _parse_json_body(body)
                return await self._in_executor(self._submit_job, document)
            if method == "GET":
                return 200, {"jobs": self._jobs.list_documents()}
            return 405, {"error": "use POST /jobs or GET /jobs"}
        if path.startswith("/jobs/"):
            self._count_request("/jobs/<id>")
            if method != "GET":
                return 405, {"error": "job queries use GET"}
            return self._job_query(path)
        self._count_request("<unknown>")
        return 404, {"error": f"unknown path {path!r}"}

    async def _in_executor(self, fn, *args) -> Tuple[int, Dict[str, Any]]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._query_executor, fn, *args)

    # -- endpoint bodies -----------------------------------------------------

    def _submit_job(self, document: Any) -> Tuple[int, Dict[str, Any]]:
        request = validate_explore_request(document)
        job = self._jobs.submit(request)
        return 202, job.status_document()

    def _job_query(self, path: str) -> Tuple[int, Dict[str, Any]]:
        segments = path.split("/")[2:]
        job = self._jobs.get(segments[0])
        if job is None:
            return 404, {"error": f"unknown job {segments[0]!r}"}
        if len(segments) == 1:
            return 200, job.status_document()
        view = segments[1]
        if view not in ("result", "trajectory", "front"):
            return 404, {"error": f"unknown job view {view!r}"}
        if job.state == "failed":
            return 409, {"error": job.error, "state": "failed", "job": job.id}
        if job.document is None:
            return 409, {
                "error": f"job {job.id} is {job.state}; poll GET /jobs/{job.id}",
                "state": job.state,
                "job": job.id,
            }
        if view == "result":
            return 200, job.document
        if view == "trajectory":
            return 200, {
                "job": job.id,
                "trajectories": {
                    result["engine"]: result["trajectory"]
                    for result in job.document["results"]
                },
            }
        fronts = {
            result["engine"]: result["front"]
            for result in job.document["results"]
            if "front" in result
        }
        if not fronts:
            return 409, {
                "error": f"job {job.id} did not track a Pareto front "
                "(submit with \"pareto\": true)",
                "job": job.id,
            }
        return 200, {"job": job.id, "fronts": fronts}

    def _schedule_query(self, document: Any) -> Tuple[int, Dict[str, Any]]:
        request = validate_schedule_request(document)
        system = system_from_dict(request["system"])
        system.graph.validate()
        expanded = system.expand()
        result = ScheduleMerger(
            expanded.graph, expanded.mapping, system.architecture
        ).merge()
        report = None
        if request["validate"]:
            report = validate_merge_result(
                expanded.graph, expanded.mapping, result, system.architecture
            )
        return 200, schedule_document(system.name, result, report)

    def _sweep_query(self, document: Any) -> Tuple[int, Dict[str, Any]]:
        request = validate_sweep_request(document)
        series = {}
        for size in request["nodes"]:
            configs = paper_experiment_configs(
                size,
                request["graphs"],
                paths_options=request["paths"],
                base_seed=size,
            )
            by_paths: Dict[int, list] = {}
            for config in configs:
                system = RandomSystemGenerator(config).generate()
                result = ScheduleMerger(
                    system.graph, system.expanded_mapping, system.architecture
                ).merge()
                by_paths.setdefault(config.alternative_paths, []).append(result)
            series[f"{size} nodes"] = {
                count: aggregate(results).average_increase_percent
                for count, results in sorted(by_paths.items())
            }
        return 200, sweep_document(series, request["graphs"])

    def _stats_document(self) -> Dict[str, Any]:
        uptime = time.monotonic() - self._started_monotonic
        with self._counter_lock:
            total = self._requests_total
            by_route = dict(sorted(self._requests_by_route.items()))
        states: Dict[str, int] = {}
        for document in self._jobs.list_documents():
            states[document["state"]] = states.get(document["state"], 0) + 1
        lane = self._jobs.lane
        return {
            "uptime_seconds": uptime,
            "requests": {"total": total, "by_route": by_route},
            "requests_per_second": total / uptime if uptime > 0 else 0.0,
            "jobs": {
                "queue_depth": self._jobs.queue_depth(),
                "by_state": dict(sorted(states.items())),
            },
            "batching": {
                "rounds": lane.rounds,
                "batches": lane.batches,
                "coalesced": lane.coalesced,
            },
        }


def _parse_json_body(body: bytes) -> Any:
    if not body:
        raise SerializationError("request body is empty; send a JSON document")
    try:
        return json.loads(body)
    except json.JSONDecodeError as error:
        raise SerializationError(f"request body is not valid JSON: {error}")


class RunningService:
    """A service running on a background thread (tests, benchmarks, CI).

    Usage::

        with start_in_thread() as service:
            ...  # http://127.0.0.1:{service.port}

    ``close()`` requests shutdown, joins the serving thread and propagates
    nothing — it is safe to call twice (the test-timeout cleanup path).
    """

    def __init__(self, service: ExplorationService) -> None:
        self.service = service
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def start(self, timeout: float = 10.0) -> "RunningService":
        self._thread = threading.Thread(
            target=self._serve, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service failed to start within timeout")
        return self

    def _serve(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._amain())
        finally:
            loop.close()

    async def _amain(self) -> None:
        await self.service.start()
        self._ready.set()
        await self.service.serve_until_shutdown()

    def close(self, timeout: float = 30.0) -> None:
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(self.service.request_shutdown)
            thread.join(timeout)

    def __enter__(self) -> "RunningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_in_thread(**kwargs) -> RunningService:
    """Start an :class:`ExplorationService` on a background thread.

    Keyword arguments go to :class:`ExplorationService`; the default binds an
    ephemeral localhost port (read it from ``.port``).
    """
    return RunningService(ExplorationService(**kwargs)).start()


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8765,
    job_workers: int = 2,
    cache_max_entries: Optional[int] = None,
    cache_max_bytes: Optional[int] = None,
    tracer=None,
) -> int:
    """Blocking entry point behind ``repro-cpg serve``."""
    service = ExplorationService(
        host=host,
        port=port,
        job_workers=job_workers,
        cache_max_entries=cache_max_entries,
        cache_max_bytes=cache_max_bytes,
        tracer=tracer,
    )

    async def _amain() -> None:
        await service.start()
        print(
            f"repro-cpg serve: listening on http://{host}:{service.port} "
            f"({job_workers} job worker(s))",
            flush=True,
        )
        await service.serve_until_shutdown()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        pass
    return 0
