"""Job execution behind the service: scoped caches, batching, the job store.

Three pieces sit between a validated request document and its result:

* :class:`ScopedStageCaches` — one **bounded** shared
  :class:`~repro.exploration.StageCache` per *stage scope*
  (:attr:`~repro.exploration.ExplorationProblem.stage_scope_key`).
  Near-duplicate tenants — same graph content, architecture, bus policy and
  sizing bounds; any name or seed mapping — land in the same scope and serve
  each other's expansion and per-path schedule stages.  That cross-request
  reuse is the whole multi-tenant win of serving exploration instead of
  shipping a CLI.
* :class:`BatchLane` — coalesces the neighbourhood batches of concurrently
  running jobs into single :meth:`~repro.exploration.EvaluationPool.\
evaluate_batches` submission rounds.  Evaluation is pure and batch results
  split back by position, so coalescing is a throughput knob, never a
  semantics change.
* :class:`JobManager` — the submit→poll→fetch store.  Jobs run on a small
  thread pool; each one explores through a :class:`BatchingEvaluator` whose
  whole-candidate cache is job-private (fingerprints are problem-specific)
  but whose stage cache is the scope's shared one.

Determinism: a job's result document depends only on its request (given a
cold scope also byte-identically matching the one-shot CLI).  Stages are
pure, so a warm or concurrently-shared scope cache changes only the stage
hit *counters* in the document, never the search trajectory, best candidate
or front.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..exploration import (
    CachedEvaluator,
    EvaluationPool,
    Explorer,
    ExplorationProblem,
    ParetoFront,
    StageCache,
)
from .documents import explore_document
from .requests import config_from_request, engines_for, problem_and_origin

#: Default budgets of each scope's shared stage cache.  Large enough that a
#: single modest job never evicts its own working set (the CI byte-identity
#: smoke relies on a cold fig1 job staying eviction-free), small enough that
#: a long-running server cannot grow without bound.
DEFAULT_CACHE_MAX_ENTRIES = 4096
DEFAULT_CACHE_MAX_BYTES = 64 * 1024 * 1024


class ScopedStageCaches:
    """Shared bounded stage caches, one per problem stage scope."""

    def __init__(
        self,
        max_entries: Optional[int] = DEFAULT_CACHE_MAX_ENTRIES,
        max_bytes: Optional[int] = DEFAULT_CACHE_MAX_BYTES,
    ) -> None:
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._caches: Dict[str, StageCache] = {}
        self._tenants: Dict[str, int] = {}
        self._lock = threading.Lock()

    def cache_for(self, scope: str) -> StageCache:
        """The scope's shared cache (created bounded on first use)."""
        with self._lock:
            cache = self._caches.get(scope)
            if cache is None:
                cache = StageCache(
                    max_entries=self._max_entries, max_bytes=self._max_bytes
                )
                self._caches[scope] = cache
                self._tenants[scope] = 0
            self._tenants[scope] += 1
            return cache

    def stats_document(self) -> Dict[str, Any]:
        """The eviction-stats document behind ``GET /cache``."""
        with self._lock:
            scopes = {}
            totals = {
                "entries": 0,
                "occupancy_bytes": 0,
                "lru_evictions": 0,
                "integrity_evictions": 0,
                "hits": 0,
                "misses": 0,
            }
            for scope, cache in sorted(self._caches.items()):
                stats = cache.stats
                entries = stats.expansions + stats.schedules
                hits = stats.expansion_hits + stats.schedule_hits
                misses = stats.expansion_misses + stats.schedule_misses
                scopes[scope] = {
                    "tenants": self._tenants[scope],
                    "entries": entries,
                    "expansions": stats.expansions,
                    "schedules": stats.schedules,
                    "occupancy_bytes": stats.occupancy_bytes,
                    "max_entries": stats.max_entries,
                    "max_bytes": stats.max_bytes,
                    "lru_evictions": stats.lru_evictions,
                    "integrity_evictions": stats.integrity_evictions,
                    "expansion_hits": stats.expansion_hits,
                    "expansion_misses": stats.expansion_misses,
                    "schedule_hits": stats.schedule_hits,
                    "schedule_misses": stats.schedule_misses,
                    "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                }
                totals["entries"] += entries
                totals["occupancy_bytes"] += stats.occupancy_bytes
                totals["lru_evictions"] += stats.lru_evictions
                totals["integrity_evictions"] += stats.integrity_evictions
                totals["hits"] += hits
                totals["misses"] += misses
            return {
                "budget": {
                    "max_entries": self._max_entries or 0,
                    "max_bytes": self._max_bytes or 0,
                },
                "scopes": scopes,
                "totals": totals,
            }


class _LaneEntry:
    """One waiting batch: its pool, candidates, and the result hand-off."""

    __slots__ = ("pool", "candidates", "results", "error", "done")

    def __init__(self, pool: EvaluationPool, candidates: List) -> None:
        self.pool = pool
        self.candidates = candidates
        self.results: Optional[List] = None
        self.error: Optional[BaseException] = None
        self.done = threading.Event()


class BatchLane:
    """Coalesces concurrent evaluation batches into pool submission rounds.

    Leader/follower: every caller appends its batch to the pending queue and
    then contends for the drain lock.  The winner drains *everything*
    pending — its own batch plus whatever other jobs queued while the
    previous round ran — groups the batches by their owning pool (pools are
    problem-specific; grouping keeps every candidate on the problem that
    spawned it) and submits each group as one
    :meth:`~repro.exploration.EvaluationPool.evaluate_batches` round.
    Followers find their entry completed and return without submitting.

    The counters (``rounds``, ``batches``, ``coalesced``) feed the service's
    ``GET /stats`` document; they are bookkeeping only.
    """

    def __init__(self) -> None:
        self._pending: List[_LaneEntry] = []
        self._lock = threading.Lock()
        self._drain = threading.Lock()
        self.rounds = 0
        self.batches = 0
        self.coalesced = 0

    def evaluate(self, pool: EvaluationPool, candidates: List) -> List:
        entry = _LaneEntry(pool, list(candidates))
        with self._lock:
            self._pending.append(entry)
        with self._drain:
            if not entry.done.is_set():
                self._drain_pending()
        if entry.error is not None:
            raise entry.error
        assert entry.results is not None
        return entry.results

    def _drain_pending(self) -> None:
        """Submit every pending batch (caller owns the drain lock)."""
        with self._lock:
            drained, self._pending = self._pending, []
        if not drained:
            return
        self.rounds += 1
        self.batches += len(drained)
        if len(drained) > 1:
            self.coalesced += len(drained) - 1
        groups: Dict[int, Tuple[EvaluationPool, List[_LaneEntry]]] = {}
        for entry in drained:
            groups.setdefault(id(entry.pool), (entry.pool, []))[1].append(entry)
        for pool, entries in groups.values():
            try:
                split = pool.evaluate_batches(
                    [entry.candidates for entry in entries]
                )
            except BaseException as error:  # hand the failure to every waiter
                for entry in entries:
                    entry.error = error
                    entry.done.set()
                continue
            for entry, results in zip(entries, split):
                entry.results = results
                entry.done.set()


class BatchingEvaluator(CachedEvaluator):
    """A :class:`CachedEvaluator` whose fresh batches ride the batch lane.

    The whole-candidate fingerprint cache stays job-private (exactly the
    CLI's serial shape, so ``resilience`` stays null and the result document
    byte-identical); only the *fresh* evaluations detour through the lane to
    the job's serial :class:`~repro.exploration.EvaluationPool`, which holds
    the scope's shared stage cache.
    """

    def __init__(
        self,
        problem: ExplorationProblem,
        lane: BatchLane,
        pool: EvaluationPool,
        weights,
        front: Optional[ParetoFront] = None,
        stage_cache: Optional[StageCache] = None,
    ) -> None:
        super().__init__(
            problem,
            weights=weights,
            front=front,
            stage_cache=stage_cache if stage_cache is not None else True,
        )
        self._lane = lane
        self._batch_pool = pool

    def _evaluate_fresh(self, candidates: List) -> List:
        shipped_before = self._batch_pool.payload_bytes_shipped
        evaluations = self._lane.evaluate(self._batch_pool, candidates)
        # Keep the batch-stats contract of CachedEvaluator._evaluate_fresh:
        # one fresh batch recorded per detour through the lane.  The job
        # pool is serial, so the shipped-bytes delta is normally zero.
        self.batch_stats.record_batch(
            len(candidates),
            self._batch_pool.payload_bytes_shipped - shipped_before,
        )
        return evaluations


class Job:
    """One submitted exploration job and everything ever known about it."""

    __slots__ = (
        "id", "request", "state", "error", "origin", "scope",
        "document", "shared_cache",
    )

    def __init__(self, job_id: str, request: Dict[str, Any]) -> None:
        self.id = job_id
        self.request = request
        self.state = "queued"
        self.error: Optional[str] = None
        self.origin: Optional[str] = None
        self.scope: Optional[str] = None
        self.document: Optional[Dict[str, Any]] = None
        # Per-job slice of the scope cache's accounting: entries already in
        # the shared cache when the job started (nonzero = a near-duplicate
        # tenant ran before us) and the stage hits this job collected.
        self.shared_cache: Optional[Dict[str, Any]] = None

    def status_document(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "job": self.id,
            "state": self.state,
            "engine": self.request["engine"],
            "seed": self.request["seed"],
        }
        if self.origin is not None:
            document["problem"] = self.origin
        if self.scope is not None:
            document["cache_scope"] = self.scope
        if self.shared_cache is not None:
            document["shared_cache"] = self.shared_cache
        if self.error is not None:
            document["error"] = self.error
        return document


class JobManager:
    """Submit→poll→fetch job store over a worker thread pool."""

    def __init__(
        self,
        caches: Optional[ScopedStageCaches] = None,
        workers: int = 2,
        metrics=None,
        tracer=None,
    ) -> None:
        self._caches = caches if caches is not None else ScopedStageCaches()
        self._lane = BatchLane()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-job"
        )
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._next_id = 0
        self._metrics = metrics
        self._tracer = tracer

    @property
    def caches(self) -> ScopedStageCaches:
        return self._caches

    @property
    def lane(self) -> BatchLane:
        return self._lane

    def submit(self, request: Dict[str, Any]) -> Job:
        """Enqueue one validated explore request; returns the queued job."""
        with self._lock:
            self._next_id += 1
            job = Job(f"job-{self._next_id}", request)
            self._jobs[job.id] = job
            self._order.append(job.id)
        if self._metrics is not None:
            self._metrics.count("service.jobs.submitted")
        if self._tracer is not None:
            self._tracer.event("service.job_submitted", job=job.id)
        self._executor.submit(self._run, job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list_documents(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [self._jobs[job_id].status_document() for job_id in self._order]

    def queue_depth(self) -> int:
        """Jobs submitted but not yet finished (queued + running)."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values()
                if job.state in ("queued", "running")
            )

    def close(self) -> None:
        """Stop accepting work and wait for running jobs to finish."""
        self._executor.shutdown(wait=True, cancel_futures=True)

    # -- execution -----------------------------------------------------------

    def _run(self, job: Job) -> None:
        job.state = "running"
        span = (
            self._tracer.span("service.job", job=job.id)
            if self._tracer is not None
            else None
        )
        try:
            self._execute(job)
            job.state = "done"
        except Exception as error:
            job.error = str(error)
            job.state = "failed"
            if self._metrics is not None:
                self._metrics.count("service.jobs.failed")
        finally:
            if span is not None:
                span.close(state=job.state)
            if self._metrics is not None:
                self._metrics.count("service.jobs.finished")

    def _execute(self, job: Job) -> None:
        request = job.request
        problem, origin = problem_and_origin(request)
        job.origin = origin
        scope = problem.stage_scope_key
        job.scope = scope
        cache = self._caches.cache_for(scope)
        before = cache.stats
        config = config_from_request(request)
        pool = EvaluationPool(
            problem,
            config.weights,
            workers=1,
            mode="serial",
            stage_cache=cache,
        )
        try:
            evaluator = BatchingEvaluator(
                problem,
                lane=self._lane,
                pool=pool,
                weights=config.weights,
                front=ParetoFront() if config.track_front else None,
                stage_cache=cache,
            )
            explorer = Explorer(problem, config=config, evaluator=evaluator)
            results = [
                explorer.explore(engine)
                for engine in engines_for(request["engine"])
            ]
        finally:
            pool.close()
        job.document = explore_document(
            origin,
            request["seed"],
            results,
            include_front=request["pareto"],
            problem=problem,
        )
        after = cache.stats
        job.shared_cache = {
            "scope": scope,
            "entries_at_start": before.expansions + before.schedules,
            "stage_hits": (
                (after.expansion_hits - before.expansion_hits)
                + (after.schedule_hits - before.schedule_hits)
            ),
            "stage_misses": (
                (after.expansion_misses - before.expansion_misses)
                + (after.schedule_misses - before.schedule_misses)
            ),
            "lru_evictions": after.lru_evictions - before.lru_evictions,
        }
        if self._metrics is not None:
            self._metrics.count(
                "service.stage_hits",
                job.shared_cache["stage_hits"],
            )
            self._metrics.gauge(
                "service.cache.occupancy_bytes", float(after.occupancy_bytes)
            )
