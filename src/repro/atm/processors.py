"""Processor cost models and OAM-block architectures for the ATM case study.

The paper evaluates the OAM block of an ATM switch on architectures built from
one or two processors (486DX2-80 or Pentium-120), one or two memory modules
and a bus (Fig. 7b).  Execution times of the VHDL processes are not published;
we model the two processor types through a relative speed factor (nominal
process execution times are "486 nanoseconds", the Pentium executes them
``PENTIUM_SPEEDUP`` times faster) and each memory module as a sequential
resource on which memory-access processes execute at a speed independent of
the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..architecture import Architecture, ProcessingElement, bus, programmable

#: Relative speed of a Pentium-120 with respect to a 486DX2-80 in this model.
#: The paper's measured mode-2 ratio (1732 ns / 1167 ns ~ 1.48) mixes CPU-bound
#: and memory-bound work; a CPU-only speed-up of 1.6 lands in the same range
#: once memory accesses (which do not speed up) are accounted for.
PENTIUM_SPEEDUP: float = 1.6

#: Time of one condition broadcast on the OAM-block bus (nanoseconds).
OAM_BROADCAST_TIME: float = 10.0

PROCESSOR_486 = "486"
PROCESSOR_PENTIUM = "Pentium"


def processor_speed(kind: str) -> float:
    """Speed factor of one of the two processor types of the case study."""
    if kind == PROCESSOR_486:
        return 1.0
    if kind == PROCESSOR_PENTIUM:
        return PENTIUM_SPEEDUP
    raise ValueError(f"unknown processor kind {kind!r}")


@dataclass(frozen=True)
class OAMArchitectureConfig:
    """One architecture variant of Table 2 (e.g. two Pentiums, one memory module)."""

    processors: Tuple[str, ...]
    memories: int

    @property
    def label(self) -> str:
        cpu_part = f"{len(self.processors)}P"
        if len(set(self.processors)) == 1:
            cpu_label = (
                f"2x{self.processors[0]}"
                if len(self.processors) == 2
                else self.processors[0]
            )
        else:
            cpu_label = "+".join(self.processors)
        return f"{cpu_part}/{self.memories}M {cpu_label}"

    def __str__(self) -> str:
        return self.label


def build_oam_architecture(config: OAMArchitectureConfig) -> Architecture:
    """Build the architecture of one Table 2 column.

    CPUs are programmable processors named ``cpu1``/``cpu2``; memory modules
    are modelled as sequential processing elements named ``mem1``/``mem2``
    (one access at a time, speed independent of the CPU type); a single bus
    connects everything and carries inter-resource transfers and condition
    broadcasts.
    """
    if not 1 <= len(config.processors) <= 2:
        raise ValueError("the OAM block uses one or two processors")
    if not 1 <= config.memories <= 2:
        raise ValueError("the OAM block uses one or two memory modules")
    processors: List[ProcessingElement] = []
    for index, kind in enumerate(config.processors, start=1):
        processors.append(
            programmable(f"cpu{index}", speed=processor_speed(kind), description=kind)
        )
    for index in range(1, config.memories + 1):
        processors.append(programmable(f"mem{index}", description="memory module"))
    return Architecture(
        processors,
        [bus("oam_bus")],
        condition_broadcast_time=OAM_BROADCAST_TIME,
    )


def table2_architecture_configs() -> List[OAMArchitectureConfig]:
    """The ten architecture variants of Table 2, in the paper's column order."""
    configs = []
    for memories in (1, 2):
        for kind in (PROCESSOR_486, PROCESSOR_PENTIUM):
            configs.append(OAMArchitectureConfig((kind,), memories))
    for memories in (1, 2):
        configs.append(
            OAMArchitectureConfig((PROCESSOR_486, PROCESSOR_486), memories)
        )
        configs.append(
            OAMArchitectureConfig((PROCESSOR_PENTIUM, PROCESSOR_PENTIUM), memories)
        )
        configs.append(
            OAMArchitectureConfig((PROCESSOR_486, PROCESSOR_PENTIUM), memories)
        )
    return configs
