"""ATM switch OAM block case study (the paper's Table 2 experiment)."""

from .evaluate import (
    PAPER_TABLE2,
    OAMEvaluation,
    candidate_mappings,
    evaluate_mode,
    evaluate_table2,
    table2_delays,
)
from .modes import OAMMode, build_all_modes, build_mode1, build_mode2, build_mode3
from .processors import (
    OAMArchitectureConfig,
    PENTIUM_SPEEDUP,
    build_oam_architecture,
    processor_speed,
    table2_architecture_configs,
)

__all__ = [
    "OAMArchitectureConfig",
    "OAMEvaluation",
    "OAMMode",
    "PAPER_TABLE2",
    "PENTIUM_SPEEDUP",
    "build_all_modes",
    "build_mode1",
    "build_mode2",
    "build_mode3",
    "build_oam_architecture",
    "candidate_mappings",
    "evaluate_mode",
    "evaluate_table2",
    "processor_speed",
    "table2_architecture_configs",
    "table2_delays",
]
