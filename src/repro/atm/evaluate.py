"""Worst-case delay estimation of the OAM block on alternative architectures.

The paper's experiment (Table 2) estimates the worst-case delay of each OAM
mode on ten architecture variants in order to select an architecture and to
dimension the input buffers.  "For each architecture, processes have been
assigned to processors taking into consideration the potential parallelism of
the process graphs and the amount of communication between processes" — we
emulate that by evaluating a small set of candidate mappings (all work on the
fastest CPU, parallel groups split over the CPUs, memory accesses on one or on
both memory modules) and keeping the best resulting worst-case delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Tuple

from ..architecture import Architecture, Mapping
from ..graph import expand_communications
from ..scheduling import MergeResult, ScheduleMerger
from .modes import OAMMode, build_all_modes
from .processors import (
    OAMArchitectureConfig,
    build_oam_architecture,
    table2_architecture_configs,
)

#: Worst-case delays (ns) published in Table 2 of the paper, for comparison.
PAPER_TABLE2: Dict[int, Dict[str, float]] = {
    1: {
        "1P/1M 486": 4471, "1P/1M Pentium": 2701,
        "1P/2M 486": 4471, "1P/2M Pentium": 2701,
        "2P/1M 2x486": 2932, "2P/1M 2xPentium": 2131, "2P/1M 486+Pentium": 2532,
        "2P/2M 2x486": 2932, "2P/2M 2xPentium": 1932, "2P/2M 486+Pentium": 2532,
    },
    2: {
        "1P/1M 486": 1732, "1P/1M Pentium": 1167,
        "1P/2M 486": 1732, "1P/2M Pentium": 1167,
        "2P/1M 2x486": 1732, "2P/1M 2xPentium": 1167, "2P/1M 486+Pentium": 1167,
        "2P/2M 2x486": 1732, "2P/2M 2xPentium": 1167, "2P/2M 486+Pentium": 1167,
    },
    3: {
        "1P/1M 486": 5852, "1P/1M Pentium": 3548,
        "1P/2M 486": 5852, "1P/2M Pentium": 3548,
        "2P/1M 2x486": 5033, "2P/1M 2xPentium": 3548, "2P/1M 486+Pentium": 3548,
        "2P/2M 2x486": 5033, "2P/2M 2xPentium": 3548, "2P/2M 486+Pentium": 3548,
    },
}


@dataclass(frozen=True)
class OAMEvaluation:
    """The best schedule found for one mode on one architecture variant."""

    mode: int
    architecture_label: str
    worst_case_delay: float
    cpu_strategy: str
    memory_strategy: str
    result: MergeResult


def candidate_mappings(
    mode: OAMMode, architecture: Architecture
) -> List[Tuple[str, str, Mapping]]:
    """Candidate process-to-resource assignments for one architecture variant."""
    cpus = sorted(
        (pe for pe in architecture.programmable_processors if pe.name.startswith("cpu")),
        key=lambda pe: (-pe.speed, pe.name),
    )
    memories = sorted(
        (pe for pe in architecture.programmable_processors if pe.name.startswith("mem")),
        key=lambda pe: pe.name,
    )
    if not cpus or not memories:
        raise ValueError("an OAM architecture needs at least one CPU and one memory")

    cpu_strategies = ["single"]
    if len(cpus) > 1:
        cpu_strategies.append("split")
    memory_strategies = ["single"]
    if len(memories) > 1:
        memory_strategies.append("split")

    candidates: List[Tuple[str, str, Mapping]] = []
    for cpu_strategy, memory_strategy in product(cpu_strategies, memory_strategies):
        mapping = Mapping(architecture)
        for name, group in mode.cpu_groups.items():
            if cpu_strategy == "split" and group == "B":
                mapping.assign(name, cpus[-1])
            else:
                mapping.assign(name, cpus[0])
        for name, module in mode.memory_groups.items():
            if memory_strategy == "split" and module == 2:
                mapping.assign(name, memories[-1])
            else:
                mapping.assign(name, memories[0])
        candidates.append((cpu_strategy, memory_strategy, mapping))
    return candidates


def evaluate_mode(
    mode: OAMMode, config: OAMArchitectureConfig
) -> OAMEvaluation:
    """Best worst-case delay of one mode on one architecture variant."""
    architecture = build_oam_architecture(config)
    best: Optional[OAMEvaluation] = None
    for cpu_strategy, memory_strategy, mapping in candidate_mappings(mode, architecture):
        expanded = expand_communications(mode.graph, mapping, architecture)
        merger = ScheduleMerger(expanded.graph, expanded.mapping, architecture)
        result = merger.merge()
        evaluation = OAMEvaluation(
            mode=mode.index,
            architecture_label=config.label,
            worst_case_delay=result.delta_max,
            cpu_strategy=cpu_strategy,
            memory_strategy=memory_strategy,
            result=result,
        )
        if best is None or evaluation.worst_case_delay < best.worst_case_delay:
            best = evaluation
    assert best is not None
    return best


def evaluate_table2(
    modes: Optional[List[OAMMode]] = None,
    configs: Optional[List[OAMArchitectureConfig]] = None,
) -> Dict[int, Dict[str, OAMEvaluation]]:
    """Evaluate every mode on every architecture variant (the full Table 2)."""
    modes = modes if modes is not None else build_all_modes()
    configs = configs if configs is not None else table2_architecture_configs()
    table: Dict[int, Dict[str, OAMEvaluation]] = {}
    for mode in modes:
        row: Dict[str, OAMEvaluation] = {}
        for config in configs:
            row[config.label] = evaluate_mode(mode, config)
        table[mode.index] = row
    return table


def table2_delays(
    table: Dict[int, Dict[str, OAMEvaluation]]
) -> Dict[int, Dict[str, float]]:
    """Reduce a full evaluation to the delays only (same shape as PAPER_TABLE2)."""
    return {
        mode: {label: evaluation.worst_case_delay for label, evaluation in row.items()}
        for mode, row in table.items()
    }

