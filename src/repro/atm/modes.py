"""The three operating modes of the ATM OAM block as conditional process graphs.

The paper identifies three independent modes in the functionality of the OAM
block (F4 level): depending on the content of the input buffers the block
switches between them, and each mode is controlled by its own statically
generated schedule table.  Table 2 lists only the *sizes* of the three process
graphs (32 processes / 6 paths, 23 / 3 and 42 / 8); the VHDL models themselves
are not public, so the graphs below are synthetic reconstructions with exactly
those sizes and with the structural properties the paper's discussion relies
on:

* **mode 1** (cell monitoring / performance management) has two parallel
  processing chains with independent memory accesses — it benefits from a
  second processor and, once the processors are fast, from a second memory
  module;
* **mode 2** (fault management bookkeeping) is a purely sequential chain —
  no architecture change except a faster processor helps;
* **mode 3** (loopback / continuity checking) has a small amount of
  parallelism whose benefit is eaten by inter-processor communication when
  the processors are fast.

Execution times are nominal 486DX2-80 nanoseconds; memory-access processes run
on the memory modules and are therefore insensitive to the CPU type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..conditions import Condition, Literal
from ..graph import CPGBuilder, ConditionalProcessGraph

#: Default time of one transfer on the OAM bus (nanoseconds).
OAM_COMMUNICATION_TIME: float = 30.0


@dataclass
class OAMMode:
    """One operating mode of the OAM block, ready to be mapped and scheduled."""

    index: int
    graph: ConditionalProcessGraph
    #: Parallel-group tag ("A" or "B") of every CPU process.
    cpu_groups: Dict[str, str]
    #: Preferred memory module (1 or 2) of every memory-access process.
    memory_groups: Dict[str, int]
    #: Published characteristics (Table 2): number of processes and of paths.
    expected_processes: int = 0
    expected_paths: int = 0

    @property
    def name(self) -> str:
        return f"mode{self.index}"

    @property
    def cpu_processes(self) -> Tuple[str, ...]:
        return tuple(self.cpu_groups)

    @property
    def memory_processes(self) -> Tuple[str, ...]:
        return tuple(self.memory_groups)


class _ModeBuilder:
    """Small helper that tracks CPU/memory tags while building a mode graph."""

    def __init__(self, name: str) -> None:
        self.builder = CPGBuilder(name)
        self.cpu_groups: Dict[str, str] = {}
        self.memory_groups: Dict[str, int] = {}

    def cpu(self, name: str, time: float, group: str = "A") -> str:
        self.builder.process(name, time)
        self.cpu_groups[name] = group
        return name

    def mem(self, name: str, time: float, module: int = 1) -> str:
        self.builder.process(name, time)
        self.memory_groups[name] = module
        return name

    def edge(
        self,
        src: str,
        dst: str,
        condition: Optional[Literal] = None,
        communication_time: float = OAM_COMMUNICATION_TIME,
    ) -> None:
        self.builder.edge(src, dst, condition, communication_time)

    def chain(self, *names: str) -> None:
        for src, dst in zip(names, names[1:]):
            self.edge(src, dst)

    def count(self) -> int:
        return len(self.cpu_groups) + len(self.memory_groups)

    def finish(self) -> ConditionalProcessGraph:
        return self.builder.build()


def build_mode1() -> OAMMode:
    """Mode 1: 32 processes, 6 alternative paths, parallel chains + memory traffic."""
    b = _ModeBuilder("oam-mode1")
    c1, c2, c3 = Condition("c1"), Condition("c2"), Condition("c3")

    b.cpu("p1", 60)
    b.cpu("p2", 70)
    b.cpu("d1", 50)
    b.chain("p1", "p2", "d1")

    # c1-true: two parallel chains with one memory access each.  The CPU work
    # in front of each access is sized so that the two accesses only collide
    # on a single memory module when both processors are Pentiums.
    b.cpu("a1", 300, "A")
    b.cpu("a2", 500, "A")
    b.mem("m1", 300, 1)
    b.cpu("a3", 60, "A")
    b.edge("d1", "a1", c1.true())
    b.chain("a1", "a2", "m1", "a3")
    b.cpu("b1", 480, "B")
    b.mem("m2", 300, 2)
    b.cpu("b2", 60, "B")
    b.edge("d1", "b1", c1.true())
    b.chain("b1", "m2", "b2")

    # c1-false: a single shorter chain.
    b.cpu("e1", 90)
    b.mem("m3", 150, 1)
    b.cpu("e2", 100)
    b.edge("d1", "e1", c1.false())
    b.chain("e1", "m3", "e2")

    b.cpu("j1", 40)
    b.edge("a3", "j1")
    b.edge("b2", "j1")
    b.edge("e2", "j1")

    b.cpu("g1", 90)
    b.cpu("d2", 50)
    b.chain("j1", "g1", "d2")

    # c2-true: a nested conditional (condition c3).
    b.cpu("d3", 45)
    b.edge("d2", "d3", c2.true())
    b.cpu("h1", 120, "A")
    b.cpu("h2", 90, "A")
    b.edge("d3", "h1", c3.true())
    b.chain("h1", "h2")
    b.cpu("i1", 100, "A")
    b.cpu("i2", 110, "A")
    b.edge("d3", "i1", c3.false())
    b.chain("i1", "i2")
    b.cpu("j3", 40)
    b.edge("h2", "j3")
    b.edge("i2", "j3")

    # c2-false: two short parallel chains, one of them memory bound.
    b.cpu("k1", 130, "A")
    b.cpu("k2", 90, "A")
    b.edge("d2", "k1", c2.false())
    b.chain("k1", "k2")
    b.mem("m4", 180, 1)
    b.cpu("k3", 70, "B")
    b.edge("d2", "m4", c2.false())
    b.chain("m4", "k3")

    b.cpu("j2", 40)
    b.edge("j3", "j2")
    b.edge("k2", "j2")
    b.edge("k3", "j2")

    b.cpu("s1", 80)
    b.mem("s2", 120, 2)
    b.cpu("s3", 90)
    b.cpu("s4", 70)
    b.cpu("s5", 60)
    b.chain("j2", "s1", "s2", "s3", "s4", "s5")

    mode = OAMMode(1, b.finish(), b.cpu_groups, b.memory_groups, 32, 6)
    _check_size(mode, b)
    return mode


def build_mode2() -> OAMMode:
    """Mode 2: 23 processes, 3 alternative paths, a purely sequential chain."""
    b = _ModeBuilder("oam-mode2")
    c1, c2 = Condition("c1"), Condition("c2")

    b.cpu("p1", 70)
    b.mem("p2", 110, 1)
    b.cpu("p3", 90)
    b.cpu("p4", 60)
    b.mem("p5", 120, 2)
    b.cpu("p6", 80)
    b.cpu("d1", 50)
    b.chain("p1", "p2", "p3", "p4", "p5", "p6", "d1")

    b.cpu("t1", 90)
    b.mem("t2", 130, 1)
    b.cpu("t3", 70)
    b.cpu("d2", 50)
    b.edge("d1", "t1", c1.true())
    b.chain("t1", "t2", "t3", "d2")
    b.cpu("u1", 120)
    b.cpu("u2", 80)
    b.edge("d2", "u1", c2.true())
    b.chain("u1", "u2")
    b.cpu("v1", 70)
    b.cpu("v2", 60)
    b.edge("d2", "v1", c2.false())
    b.chain("v1", "v2")
    b.cpu("j2", 40)
    b.edge("u2", "j2")
    b.edge("v2", "j2")
    b.cpu("t4", 90)
    b.edge("j2", "t4")

    b.cpu("f1", 110)
    b.mem("f2", 140, 1)
    b.cpu("f3", 90)
    b.cpu("f4", 70)
    b.edge("d1", "f1", c1.false())
    b.chain("f1", "f2", "f3", "f4")

    b.cpu("j1", 40)
    b.edge("t4", "j1")
    b.edge("f4", "j1")
    b.cpu("s1", 80)
    b.edge("j1", "s1")

    mode = OAMMode(2, b.finish(), b.cpu_groups, b.memory_groups, 23, 3)
    _check_size(mode, b)
    return mode


def build_mode3() -> OAMMode:
    """Mode 3: 42 processes, 8 alternative paths, marginal parallelism."""
    b = _ModeBuilder("oam-mode3")
    conditions = [Condition("c1"), Condition("c2"), Condition("c3")]

    b.cpu("q1", 90)
    b.cpu("q2", 110)
    b.mem("q3", 130, 1)
    b.cpu("q4", 80)
    b.chain("q1", "q2", "q3", "q4")

    previous = "q4"
    inter_chains: List[List[str]] = [["w1", "w2"], ["w3", "w4"], []]
    for block, condition in enumerate(conditions, start=1):
        d = b.cpu(f"d{block}", 50)
        b.edge(previous, d)
        true_names = [f"t{block}_{i}" for i in range(1, 5)]
        for index, name in enumerate(true_names):
            b.cpu(name, 120 if index % 2 == 0 else 90)
        b.edge(d, true_names[0], condition.true())
        b.chain(*true_names)
        false_names = [f"f{block}_{i}" for i in range(1, 4)]
        for index, name in enumerate(false_names):
            b.cpu(name, 100 if index % 2 == 0 else 70)
        b.edge(d, false_names[0], condition.false())
        b.chain(*false_names)
        j = b.cpu(f"j{block}", 40)
        b.edge(true_names[-1], j)
        b.edge(false_names[-1], j)
        previous = j
        for name in inter_chains[block - 1]:
            b.cpu(name, 90)
            b.edge(previous, name)
            previous = name

    # Suffix: a main CPU chain in parallel with a memory-bound side chain.
    # On one processor the memory access hides behind the main chain at any
    # CPU speed; off-loading the side chain to a second processor removes CPU
    # work worth 400 ns on a 486 but only 250 ns on a Pentium, which no longer
    # covers the extra bus transfer — so the second processor only pays off
    # for the 486 (the paper's mode-3 behaviour).
    b.cpu("z1", 180)
    b.cpu("z2", 180)
    b.cpu("z3", 180)
    b.cpu("z4", 160)
    b.edge(previous, "z1")
    b.chain("z1", "z2", "z3", "z4")
    b.cpu("y1", 200, "B")
    b.mem("ym", 400, 1)
    b.cpu("y2", 200, "B")
    b.edge(previous, "y1", communication_time=150.0)
    b.edge("y1", "ym")
    b.edge("ym", "y2")

    mode = OAMMode(3, b.finish(), b.cpu_groups, b.memory_groups, 42, 8)
    _check_size(mode, b)
    return mode


def _check_size(mode: OAMMode, builder: _ModeBuilder) -> None:
    actual = builder.count()
    if actual != mode.expected_processes:
        raise AssertionError(
            f"{mode.name} has {actual} processes, expected {mode.expected_processes}"
        )


def build_all_modes() -> List[OAMMode]:
    """The three OAM operating modes of Table 2."""
    return [build_mode1(), build_mode2(), build_mode3()]

