"""Random workload generation (the substrate of the paper's Fig. 5/6 experiments)."""

from .random_cpg import (
    LARGE_SCALE_PRESETS,
    GeneratedSystem,
    GeneratorConfig,
    RandomSystemGenerator,
    generate_system,
    large_scale_system,
    paper_experiment_configs,
)
from .structure import (
    StructurePlan,
    branch,
    distribute_sizes,
    plan_for_paths,
    segment,
    series,
)

__all__ = [
    "GeneratedSystem",
    "GeneratorConfig",
    "LARGE_SCALE_PRESETS",
    "RandomSystemGenerator",
    "StructurePlan",
    "branch",
    "distribute_sizes",
    "generate_system",
    "large_scale_system",
    "paper_experiment_configs",
    "plan_for_paths",
    "segment",
    "series",
]
