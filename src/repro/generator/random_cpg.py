"""Random conditional process graphs with a prescribed number of alternative paths.

The paper's evaluation (Section 6) uses 1080 graphs generated for experimental
purposes: 360 graphs for each size in {60, 80, 120} nodes, with 10, 12, 18, 24
or 32 alternative paths, execution times drawn from uniform and exponential
distributions, and architectures of one ASIC, one to eleven processors and one
to eight buses.  This module regenerates statistically equivalent workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..architecture import Architecture, Mapping, bus, hardware, programmable
from ..architecture.processing_element import ProcessingElement
from ..conditions import Condition, Literal
from ..graph import (
    CPGBuilder,
    ConditionalProcessGraph,
    ExpandedGraph,
    PathEnumerator,
    expand_communications,
)
from .structure import StructurePlan, distribute_sizes, plan_for_paths


@dataclass
class GeneratorConfig:
    """Parameters of one randomly generated system (graph + architecture + mapping)."""

    nodes: int = 60
    alternative_paths: int = 10
    execution_time_distribution: str = "uniform"  # "uniform" or "exponential"
    min_execution_time: float = 2.0
    max_execution_time: float = 20.0
    mean_execution_time: float = 10.0
    communication_to_computation_ratio: float = 0.3
    programmable_processors: int = 3
    hardware_processors: int = 1
    buses: int = 2
    hardware_mapping_fraction: float = 0.2
    condition_broadcast_time: float = 1.0
    parallel_chains_probability: float = 0.4
    seed: int = 0

    def validate(self) -> None:
        if self.nodes < 3:
            raise ValueError("a generated graph needs at least 3 processes")
        if self.alternative_paths < 1:
            raise ValueError("the number of alternative paths must be positive")
        if self.execution_time_distribution not in ("uniform", "exponential"):
            raise ValueError(
                "execution_time_distribution must be 'uniform' or 'exponential'"
            )
        if self.programmable_processors < 1:
            raise ValueError("need at least one programmable processor")
        if self.buses < 1:
            raise ValueError("need at least one bus")


@dataclass
class GeneratedSystem:
    """A complete randomly generated system ready to be scheduled."""

    config: GeneratorConfig
    process_graph: ConditionalProcessGraph
    architecture: Architecture
    mapping: Mapping
    expanded: ExpandedGraph
    plan: StructurePlan

    @property
    def graph(self) -> ConditionalProcessGraph:
        """The expanded graph (communication processes included)."""
        return self.expanded.graph

    @property
    def expanded_mapping(self) -> Mapping:
        return self.expanded.mapping

    @property
    def alternative_path_count(self) -> int:
        return PathEnumerator(self.graph).count()


class RandomSystemGenerator:
    """Generates random conditional process graphs, architectures and mappings."""

    def __init__(self, config: GeneratorConfig) -> None:
        config.validate()
        self._config = config
        self._rng = random.Random(config.seed)

    # -- public API -----------------------------------------------------------------

    def generate(self) -> GeneratedSystem:
        """Generate one complete system."""
        config = self._config
        plan = plan_for_paths(config.alternative_paths, self._rng)
        distribute_sizes(plan, config.nodes, self._rng)
        process_graph = self._build_graph(plan)
        architecture = self._build_architecture()
        mapping = self._build_mapping(process_graph, architecture)
        bus_assignment = self._assign_buses(process_graph, mapping, architecture)
        expanded = expand_communications(
            process_graph, mapping, architecture, bus_assignment=bus_assignment
        )
        return GeneratedSystem(
            config=config,
            process_graph=process_graph,
            architecture=architecture,
            mapping=mapping,
            expanded=expanded,
            plan=plan,
        )

    # -- graph construction -------------------------------------------------------------

    def _execution_time(self) -> float:
        config = self._config
        if config.execution_time_distribution == "uniform":
            return round(
                self._rng.uniform(config.min_execution_time, config.max_execution_time),
                2,
            )
        time = self._rng.expovariate(1.0 / config.mean_execution_time)
        return round(max(config.min_execution_time, time), 2)

    def _communication_time(self) -> float:
        config = self._config
        mean = (
            config.mean_execution_time
            if config.execution_time_distribution == "exponential"
            else (config.min_execution_time + config.max_execution_time) / 2.0
        )
        time = mean * config.communication_to_computation_ratio
        jitter = self._rng.uniform(0.5, 1.5)
        return round(max(config.condition_broadcast_time, time * jitter), 2)

    def _build_graph(self, plan: StructurePlan) -> ConditionalProcessGraph:
        builder = CPGBuilder("generated")
        counters = {"process": 0, "condition": 0}

        def new_process() -> str:
            counters["process"] += 1
            name = f"P{counters['process']}"
            builder.process(name, self._execution_time())
            return name

        def new_condition() -> Condition:
            counters["condition"] += 1
            return Condition(f"C{counters['condition']}")

        def connect(
            sources: List[str], target: str, literal: Optional[Literal]
        ) -> None:
            for src in sources:
                builder.edge(
                    src,
                    target,
                    condition=literal,
                    communication_time=self._communication_time(),
                )

        def build(
            node: StructurePlan,
            entries: List[str],
            literal: Optional[Literal],
        ) -> List[str]:
            if node.kind == "segment":
                return build_segment(node.size, entries, literal)
            if node.kind == "series":
                current = entries
                current_literal = literal
                for child in node.children:
                    current = build(child, current, current_literal)
                    current_literal = None
                return current
            if node.kind == "branch":
                disjunction = new_process()
                connect(entries, disjunction, literal)
                condition = new_condition()
                true_exits = build(node.children[0], [disjunction], condition.true())
                false_exits = build(node.children[1], [disjunction], condition.false())
                conjunction = new_process()
                connect(true_exits, conjunction, None)
                connect(false_exits, conjunction, None)
                return [conjunction]
            raise ValueError(f"unknown structure kind {node.kind!r}")

        def build_segment(
            size: int, entries: List[str], literal: Optional[Literal]
        ) -> List[str]:
            chains = 1
            if size >= 4 and self._rng.random() < self._config.parallel_chains_probability:
                chains = self._rng.choice([2, 3]) if size >= 6 else 2
            per_chain = [size // chains] * chains
            for index in range(size - sum(per_chain)):
                per_chain[index % chains] += 1
            exits: List[str] = []
            for chain_size in per_chain:
                previous: Optional[str] = None
                for position in range(chain_size):
                    name = new_process()
                    if position == 0:
                        connect(entries, name, literal)
                    else:
                        connect([previous], name, None)
                    previous = name
                if previous is not None:
                    exits.append(previous)
            return exits

        build(plan, [], None)
        return builder.build()

    # -- architecture and mapping ----------------------------------------------------------

    def _build_architecture(self) -> Architecture:
        config = self._config
        processors: List[ProcessingElement] = [
            programmable(f"pe{i + 1}") for i in range(config.programmable_processors)
        ]
        processors += [
            hardware(f"asic{i + 1}") for i in range(config.hardware_processors)
        ]
        buses = [bus(f"bus{i + 1}") for i in range(config.buses)]
        return Architecture(
            processors, buses, condition_broadcast_time=config.condition_broadcast_time
        )

    def _build_mapping(
        self, graph: ConditionalProcessGraph, architecture: Architecture
    ) -> Mapping:
        config = self._config
        mapping = Mapping(architecture)
        programmables = list(architecture.programmable_processors)
        hardwares = list(architecture.hardware_processors)
        for process in graph.ordinary_processes:
            if hardwares and self._rng.random() < config.hardware_mapping_fraction:
                target = self._rng.choice(hardwares)
            else:
                target = self._rng.choice(programmables)
            mapping.assign(process.name, target)
        return mapping

    def _assign_buses(
        self,
        graph: ConditionalProcessGraph,
        mapping: Mapping,
        architecture: Architecture,
    ) -> Dict[Tuple[str, str], ProcessingElement]:
        assignment: Dict[Tuple[str, str], ProcessingElement] = {}
        buses = list(architecture.buses)
        for edge in graph.edges:
            if graph[edge.src].is_dummy or graph[edge.dst].is_dummy:
                continue
            if mapping[edge.src] != mapping[edge.dst]:
                assignment[(edge.src, edge.dst)] = self._rng.choice(buses)
        return assignment


def generate_system(
    nodes: int,
    alternative_paths: int,
    seed: int = 0,
    **overrides,
) -> GeneratedSystem:
    """Convenience wrapper building one random system from keyword parameters."""
    config = GeneratorConfig(
        nodes=nodes, alternative_paths=alternative_paths, seed=seed, **overrides
    )
    return RandomSystemGenerator(config).generate()


#: Larger-than-paper generation presets for the perf-core benchmark harness.
#: The paper stops at 120-node graphs; the scaling presets stress the merge
#: loop up to high-hundreds of expanded processes (the ``xlarge`` system
#: expands to ~840 processes once communications are inserted) so the
#: benchmark trajectory in ``BENCH_core.json`` exercises production scale.
LARGE_SCALE_PRESETS: Dict[str, "GeneratorConfig"] = {
    "small": GeneratorConfig(nodes=60, alternative_paths=10, seed=7),
    "medium": GeneratorConfig(nodes=120, alternative_paths=12, seed=7),
    "large": GeneratorConfig(nodes=240, alternative_paths=16, seed=42),
    "xlarge": GeneratorConfig(nodes=480, alternative_paths=16, seed=42),
}


def large_scale_system(preset: str, seed: Optional[int] = None) -> GeneratedSystem:
    """Generate one of the :data:`LARGE_SCALE_PRESETS` systems.

    ``seed`` overrides the preset's seed to sample a different instance of
    the same scale.
    """
    try:
        base = LARGE_SCALE_PRESETS[preset]
    except KeyError:
        raise KeyError(
            f"unknown preset {preset!r}; choose from {sorted(LARGE_SCALE_PRESETS)}"
        ) from None
    config = replace(base, seed=base.seed if seed is None else seed)
    return RandomSystemGenerator(config).generate()


def paper_experiment_configs(
    nodes: int,
    graphs_per_setting: int,
    paths_options: Optional[List[int]] = None,
    base_seed: int = 0,
) -> List[GeneratorConfig]:
    """Configurations mirroring the paper's 1080-graph experiment for one size.

    For each number of alternative paths (10, 12, 18, 24, 32 by default) this
    returns ``graphs_per_setting`` configurations that alternate between
    uniform and exponential execution times and sweep the architecture between
    one and eleven processors and one and eight buses, as described in
    Section 6.
    """
    paths_options = paths_options or [10, 12, 18, 24, 32]
    rng = random.Random(base_seed)
    configs: List[GeneratorConfig] = []
    for paths in paths_options:
        for index in range(graphs_per_setting):
            configs.append(
                GeneratorConfig(
                    nodes=nodes,
                    alternative_paths=paths,
                    execution_time_distribution=(
                        "uniform" if index % 2 == 0 else "exponential"
                    ),
                    programmable_processors=rng.randint(1, 11),
                    hardware_processors=1,
                    buses=rng.randint(1, 8),
                    seed=rng.randint(0, 2**31 - 1),
                )
            )
    return configs

