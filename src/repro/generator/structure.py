"""Structural plans for random conditional process graphs.

The paper's evaluation uses graphs with a prescribed number of alternative
paths (10, 12, 18, 24 or 32).  The number of alternative paths of a
conditional process graph is determined by how conditional blocks are
composed:

* composing two sub-structures **in series** multiplies their path counts;
* a **conditional block** whose two branches contain sub-structures with
  ``a`` and ``b`` paths contributes ``a + b`` paths.

A :class:`StructurePlan` is a small expression tree over these two rules plus
plain segments (path count 1); :func:`plan_for_paths` builds a plan achieving
an exact target path count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class StructurePlan:
    """A node of the structural plan tree."""

    kind: str  # "segment", "series" or "branch"
    children: List["StructurePlan"] = field(default_factory=list)
    #: Number of ordinary processes allocated to this node (segments only).
    size: int = 1

    @property
    def path_count(self) -> int:
        if self.kind == "segment":
            return 1
        if self.kind == "series":
            product = 1
            for child in self.children:
                product *= child.path_count
            return product
        if self.kind == "branch":
            return sum(child.path_count for child in self.children)
        raise ValueError(f"unknown structure kind {self.kind!r}")

    def segments(self) -> List["StructurePlan"]:
        """All plain segments of the tree (the places that receive processes)."""
        if self.kind == "segment":
            return [self]
        result: List[StructurePlan] = []
        for child in self.children:
            result.extend(child.segments())
        return result

    def condition_count(self) -> int:
        """Number of conditions (one per branch node)."""
        if self.kind == "segment":
            return 0
        count = 1 if self.kind == "branch" else 0
        return count + sum(child.condition_count() for child in self.children)

    def describe(self) -> str:
        if self.kind == "segment":
            return f"seg({self.size})"
        inner = ", ".join(child.describe() for child in self.children)
        return f"{self.kind}[{inner}]"


def segment(size: int = 1) -> StructurePlan:
    return StructurePlan("segment", size=size)


def series(*children: StructurePlan) -> StructurePlan:
    return StructurePlan("series", list(children))


def branch(true_side: StructurePlan, false_side: StructurePlan) -> StructurePlan:
    return StructurePlan("branch", [true_side, false_side])


def plan_for_paths(
    target_paths: int, rng: Optional[random.Random] = None
) -> StructurePlan:
    """Build a structure whose number of alternative paths is exactly ``target_paths``.

    The decomposition is randomised (seeded through ``rng``) so that repeated
    calls generate structurally different graphs with the same path count.
    """
    if target_paths < 1:
        raise ValueError("the number of alternative paths must be at least 1")
    rng = rng or random.Random()

    def build(n: int) -> StructurePlan:
        if n == 1:
            return segment()
        choices = []
        factorisations = _factor_pairs(n)
        if factorisations:
            choices.append("series")
        choices.append("branch")
        kind = rng.choice(choices)
        if kind == "series":
            a, b = rng.choice(factorisations)
            return series(build(a), segment(), build(b))
        # branch: split additively, each side at least one path
        a = rng.randint(1, n - 1)
        b = n - a
        inner = branch(build(a), build(b))
        # surround the conditional block with plain segments so that the
        # disjunction and conjunction processes have some work around them
        return series(segment(), inner, segment())

    plan = build(target_paths)
    if plan.path_count != target_paths:
        raise AssertionError(
            f"internal error: built {plan.path_count} paths instead of {target_paths}"
        )
    return plan


def _factor_pairs(n: int) -> List[Tuple[int, int]]:
    """Non-trivial factorisations ``(a, b)`` of ``n`` with ``a, b >= 2``."""
    pairs = []
    for a in range(2, int(n**0.5) + 1):
        if n % a == 0:
            pairs.append((a, n // a))
    return pairs


def distribute_sizes(
    plan: StructurePlan, total_processes: int, rng: Optional[random.Random] = None
) -> None:
    """Distribute a total number of ordinary processes over the plan's segments.

    Branch nodes consume one process each (the disjunction process) and each
    conditional block re-joins in a conjunction process; the remaining budget
    is spread over plain segments, each receiving at least one process.
    """
    rng = rng or random.Random()
    segments = plan.segments()
    overhead = 2 * plan.condition_count()  # disjunction + conjunction processes
    budget = max(len(segments), total_processes - overhead)
    base = budget // len(segments)
    remainder = budget - base * len(segments)
    for seg in segments:
        seg.size = max(1, base)
    for seg in rng.sample(segments, k=min(remainder, len(segments))):
        seg.size += 1
