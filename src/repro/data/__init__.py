"""Reference systems shipped with the library (the paper's worked example)."""

from .fig1 import (
    COMMUNICATION_TIMES,
    CONDITION_BROADCAST_TIME,
    EXECUTION_TIMES,
    PAPER_PATH_DELAYS,
    PAPER_WORST_CASE_DELAY,
    PROCESS_MAPPING,
    Fig1Example,
    build_architecture,
    build_mapping,
    build_process_graph,
    load_fig1_example,
)

__all__ = [
    "COMMUNICATION_TIMES",
    "CONDITION_BROADCAST_TIME",
    "EXECUTION_TIMES",
    "Fig1Example",
    "PAPER_PATH_DELAYS",
    "PAPER_WORST_CASE_DELAY",
    "PROCESS_MAPPING",
    "build_architecture",
    "build_mapping",
    "build_process_graph",
    "load_fig1_example",
]
