"""The example conditional process graph of Fig. 1 of the paper.

The figure itself is only available as a drawing; its node set, execution
times, communication times, mapping, guards (``X_P3 = true``,
``X_P5 = C``, ``X_P14 = D and K``, ``X_P17 = true``) and the identity of the
fourteen inter-processor communications are given in the text and are
reproduced exactly here.  The precise set of intra-processor edges is not
listed in the paper, so the topology below is a faithful reconstruction that
matches every published fact:

* P2 is the disjunction process of condition ``C`` (it finishes at t = 7 in
  Table 1, when ``C`` is broadcast), with the ``C`` branch towards P5 and the
  ``not C`` branch towards P4;
* P11 is the disjunction process of condition ``D`` (broadcast at t = 6), with
  branches towards P12 (``D``) and P13 (``not D``);
* P12 is the disjunction process of condition ``K`` (broadcast at t = 15),
  with branches towards P14 (``K``) and P15 (``not K``), so ``K`` is only
  determined when ``D`` is true — giving the six alternative paths of Fig. 2;
* P7 and P17 are conjunction processes re-joining the alternative branches;
* P10 and P17 are the two predecessors of the sink, matching the worst-case
  delay computation ``delta_max = max(t(P10) + 5, t(P17) + 2)`` of Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..architecture import Architecture, Mapping, bus, hardware, programmable
from ..conditions import Condition
from ..graph import CPGBuilder, ConditionalProcessGraph, ExpandedGraph, expand_communications

#: Execution times of the ordinary processes P1..P17 (paper, Fig. 1).
EXECUTION_TIMES: Dict[str, float] = {
    "P1": 3, "P2": 4, "P3": 12, "P4": 5, "P5": 3, "P6": 5, "P7": 3, "P8": 4,
    "P9": 5, "P10": 5, "P11": 6, "P12": 6, "P13": 8, "P14": 2, "P15": 6,
    "P16": 4, "P17": 2,
}

#: Communication times of the fourteen inter-processor connections (paper, Fig. 1).
COMMUNICATION_TIMES: Dict[Tuple[str, str], float] = {
    ("P1", "P3"): 1, ("P2", "P5"): 3, ("P3", "P6"): 2, ("P3", "P10"): 2,
    ("P4", "P7"): 3, ("P6", "P8"): 3, ("P7", "P10"): 2, ("P8", "P10"): 2,
    ("P11", "P12"): 1, ("P11", "P13"): 2, ("P12", "P14"): 1, ("P12", "P15"): 3,
    ("P13", "P17"): 2, ("P16", "P17"): 2,
}

#: Mapping of the ordinary processes to the processing elements (paper, Fig. 1).
PROCESS_MAPPING: Dict[str, str] = {
    "P1": "pe1", "P2": "pe1", "P4": "pe1", "P6": "pe1", "P9": "pe1",
    "P10": "pe1", "P13": "pe1",
    "P3": "pe2", "P5": "pe2", "P7": "pe2", "P11": "pe2", "P14": "pe2",
    "P15": "pe2", "P17": "pe2",
    "P8": "pe3", "P12": "pe3", "P16": "pe3",
}

#: The condition communication time tau0 used for Table 1 (paper, Section 3).
CONDITION_BROADCAST_TIME: float = 1.0

#: Per-path optimal schedule lengths reported in Fig. 2 of the paper, keyed by
#: the canonical (alphabetically ordered) label strings used by this library.
PAPER_PATH_DELAYS: Dict[str, float] = {
    "C & D & K": 39,     # the paper writes this path D ∧ C ∧ K
    "C & !D": 39,        # D̄ ∧ C
    "C & D & !K": 38,    # D ∧ C ∧ K̄
    "!C & D & K": 32,    # D ∧ C̄ ∧ K
    "!C & D & !K": 31,   # D ∧ C̄ ∧ K̄
    "!C & !D": 31,       # D̄ ∧ C̄
}

#: The worst-case delay of the schedule table of Table 1.
PAPER_WORST_CASE_DELAY: float = 39.0

C = Condition("C")
D = Condition("D")
K = Condition("K")


@dataclass(frozen=True)
class Fig1Example:
    """The fully prepared Fig. 1 system: graph, architecture and mapping."""

    process_graph: ConditionalProcessGraph
    architecture: Architecture
    mapping: Mapping
    expanded: ExpandedGraph

    @property
    def graph(self) -> ConditionalProcessGraph:
        """The expanded graph (communication processes included)."""
        return self.expanded.graph

    @property
    def expanded_mapping(self) -> Mapping:
        """The mapping extended with the communication processes."""
        return self.expanded.mapping


def build_architecture(num_buses: int = 1) -> Architecture:
    """Two programmable processors, one ASIC and ``num_buses`` shared buses.

    The paper's Fig. 1 platform has a single bus (``pe4``).  Larger values
    add further fully-connected buses (``pe5``, ``pe6``, ...), producing the
    "Fig. 1-style" multi-bus systems the communication-mapping explorer is
    demonstrated on: with more than one bus the default least-index policy
    still routes every message over ``pe4``, so bus assignment becomes a
    design dimension worth exploring.
    """
    if num_buses < 1:
        raise ValueError("the Fig. 1 platform needs at least one bus")
    return Architecture(
        processors=[programmable("pe1"), programmable("pe2"), hardware("pe3")],
        buses=[bus(f"pe{index + 4}") for index in range(num_buses)],
        condition_broadcast_time=CONDITION_BROADCAST_TIME,
    )


def build_process_graph() -> ConditionalProcessGraph:
    """The process-level graph (before communication expansion)."""
    builder = CPGBuilder("fig1", source_name="P0", sink_name="P32")
    for name, time in EXECUTION_TIMES.items():
        builder.process(name, time)

    def comm(src: str, dst: str) -> float:
        return COMMUNICATION_TIMES.get((src, dst), 0.0)

    # Data flow reconstructed from the published communication list.
    builder.edge("P1", "P3", communication_time=comm("P1", "P3"))
    builder.edge("P3", "P6", communication_time=comm("P3", "P6"))
    builder.edge("P3", "P10", communication_time=comm("P3", "P10"))
    builder.edge("P6", "P8", communication_time=comm("P6", "P8"))
    builder.edge("P6", "P9")
    builder.edge("P8", "P10", communication_time=comm("P8", "P10"))
    builder.edge("P9", "P10")
    builder.edge("P4", "P7", communication_time=comm("P4", "P7"))
    builder.edge("P5", "P7")
    builder.edge("P7", "P10", communication_time=comm("P7", "P10"))
    # Disjunction process P2 computes condition C.
    builder.edge("P2", "P5", condition=C.true(), communication_time=comm("P2", "P5"))
    builder.edge("P2", "P4", condition=C.false())
    # Disjunction process P11 computes condition D.
    builder.edge("P11", "P12", condition=D.true(), communication_time=comm("P11", "P12"))
    builder.edge("P11", "P13", condition=D.false(), communication_time=comm("P11", "P13"))
    # Disjunction process P12 computes condition K (only when D holds).
    builder.edge("P12", "P14", condition=K.true(), communication_time=comm("P12", "P14"))
    builder.edge("P12", "P15", condition=K.false(), communication_time=comm("P12", "P15"))
    # The alternative branches re-join in the conjunction process P17.
    builder.edge("P13", "P17", communication_time=comm("P13", "P17"))
    builder.edge("P14", "P17")
    builder.edge("P15", "P17")
    builder.edge("P16", "P17", communication_time=comm("P16", "P17"))
    return builder.build()


def build_mapping(
    architecture: Architecture, graph: ConditionalProcessGraph
) -> Mapping:
    """Map the ordinary processes onto pe1/pe2/pe3 as published in Fig. 1."""
    mapping = Mapping(architecture)
    for process_name, pe_name in PROCESS_MAPPING.items():
        mapping.assign(process_name, architecture[pe_name])
    mapping.validate_for(name for name in PROCESS_MAPPING)
    return mapping


def load_fig1_example(num_buses: int = 1) -> Fig1Example:
    """Build the complete Fig. 1 system ready for scheduling.

    ``num_buses`` > 1 yields the same graph and process mapping on a
    multi-bus variant of the platform (see :func:`build_architecture`).
    """
    architecture = build_architecture(num_buses)
    process_graph = build_process_graph()
    mapping = build_mapping(architecture, process_graph)
    expanded = expand_communications(process_graph, mapping, architecture)
    expanded.graph.validate()
    return Fig1Example(process_graph, architecture, mapping, expanded)
