"""Metrics used by the paper's experimental evaluation (Section 6).

The central quantity of Fig. 5 is the percentage increase of the worst-case
delay ``delta_max`` of the generated schedule table over ``delta_M``, the
largest of the per-path optimal delays.  This module aggregates that metric
(and a few companions) over collections of merge results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..scheduling.merging import MergeResult


@dataclass(frozen=True)
class DelayIncrease:
    """The Fig. 5 metric for a single graph."""

    delta_m: float
    delta_max: float

    @property
    def absolute(self) -> float:
        return self.delta_max - self.delta_m

    @property
    def percent(self) -> float:
        if self.delta_m <= 0:
            return 0.0
        return 100.0 * (self.delta_max - self.delta_m) / self.delta_m

    @property
    def is_zero(self) -> bool:
        return abs(self.delta_max - self.delta_m) < 1e-9


def delay_increase(result: MergeResult) -> DelayIncrease:
    """The delay increase of one merge result."""
    return DelayIncrease(result.delta_m, result.delta_max)


@dataclass
class AggregateStatistics:
    """Aggregate of the Fig. 5 metrics over a set of graphs."""

    count: int = 0
    average_increase_percent: float = 0.0
    max_increase_percent: float = 0.0
    zero_increase_fraction: float = 0.0
    average_delta_m: float = 0.0
    average_delta_max: float = 0.0
    increases: List[float] = field(default_factory=list)


def aggregate(results: Iterable[MergeResult]) -> AggregateStatistics:
    """Aggregate delay-increase statistics over several merge results."""
    increases = [delay_increase(result) for result in results]
    stats = AggregateStatistics(count=len(increases))
    if not increases:
        return stats
    percents = [inc.percent for inc in increases]
    stats.increases = percents
    stats.average_increase_percent = sum(percents) / len(percents)
    stats.max_increase_percent = max(percents)
    stats.zero_increase_fraction = sum(1 for inc in increases if inc.is_zero) / len(
        increases
    )
    stats.average_delta_m = sum(inc.delta_m for inc in increases) / len(increases)
    stats.average_delta_max = sum(inc.delta_max for inc in increases) / len(increases)
    return stats


def group_by(
    items: Sequence[Tuple[object, MergeResult]]
) -> Dict[object, AggregateStatistics]:
    """Group (key, result) pairs by key and aggregate each group."""
    buckets: Dict[object, List[MergeResult]] = {}
    for key, result in items:
        buckets.setdefault(key, []).append(result)
    return {key: aggregate(results) for key, results in buckets.items()}


def speedup(baseline_delay: float, delay: float) -> float:
    """Ratio of a baseline delay to a measured delay (>1 means improvement)."""
    if delay <= 0:
        return float("inf")
    return baseline_delay / delay
