"""Analysis and reporting: delay metrics, Gantt charts and table rendering."""

from .gantt import busy_fraction, render_gantt, render_schedule_listing
from .metrics import (
    AggregateStatistics,
    DelayIncrease,
    aggregate,
    delay_increase,
    group_by,
    speedup,
)
from .reporting import (
    format_comparison,
    format_exploration_comparison,
    format_pareto_front,
    format_series,
    format_table,
    format_trajectory,
)
from .table_format import (
    format_condition_rows,
    format_schedule_table,
    schedule_table_summary,
)

__all__ = [
    "AggregateStatistics",
    "DelayIncrease",
    "aggregate",
    "busy_fraction",
    "delay_increase",
    "format_comparison",
    "format_condition_rows",
    "format_exploration_comparison",
    "format_pareto_front",
    "format_schedule_table",
    "format_series",
    "format_table",
    "format_trajectory",
    "group_by",
    "render_gantt",
    "render_schedule_listing",
    "schedule_table_summary",
    "speedup",
]
