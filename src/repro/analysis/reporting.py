"""Experiment reports: the rows/series printed by the benchmark harness.

Each benchmark module regenerates one table or figure of the paper; the
helpers here turn raw measurements into the compact, aligned text blocks those
benchmarks print (and that EXPERIMENTS.md quotes).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_series(
    title: str,
    x_label: str,
    series: Mapping[str, Mapping[float, float]],
    value_format: str = "{:.2f}",
) -> str:
    """Format a figure-style result: one column per series, one row per x value.

    ``series`` maps a series name (e.g. ``"120 nodes"``) to an ``x -> y``
    mapping (e.g. number of merged schedules -> average increase).
    """
    xs = sorted({x for values in series.values() for x in values})
    names = list(series)
    header = [x_label] + names
    widths = [max(len(h), 10) for h in header]
    lines = [title]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for x in xs:
        cells = [f"{x:g}".rjust(widths[0])]
        for name, width in zip(names, widths[1:]):
            value = series[name].get(x)
            cell = value_format.format(value) if value is not None else "-"
            cells.append(cell.rjust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Format a paper-style table with a header row and aligned columns."""
    widths = [len(str(h)) for h in headers]
    text_rows: List[List[str]] = []
    for row in rows:
        cells = [
            f"{cell:g}" if isinstance(cell, (int, float)) else str(cell)
            for cell in row
        ]
        text_rows.append(cells)
        for index, cell in enumerate(cells):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_comparison(
    title: str, paper: Mapping[str, float], measured: Mapping[str, float]
) -> str:
    """Side-by-side paper-reported vs. measured values (used in EXPERIMENTS.md)."""
    keys = list(paper) + [k for k in measured if k not in paper]
    rows = []
    for key in keys:
        rows.append(
            [key, paper.get(key, float("nan")), measured.get(key, float("nan"))]
        )
    return format_table(title, ["case", "paper", "measured"], rows)


def as_dict(rows: Sequence[Sequence[object]], key_index: int = 0) -> Dict[str, List[object]]:
    """Index table rows by one column (convenience for tests)."""
    return {str(row[key_index]): list(row) for row in rows}


def format_trajectory(title: str, points: Sequence[object]) -> str:
    """Format a design-space exploration trajectory as an aligned table.

    ``points`` duck-types :class:`repro.exploration.TrajectoryPoint`: objects
    with ``cycle``, ``move``, ``cost``, ``best_cost`` and ``accepted``
    attributes, one per search cycle.
    """
    rows = [
        [point.cycle, point.move, point.cost, point.best_cost, point.accepted]
        for point in points
    ]
    return format_table(title, ["cycle", "move", "cost", "best", "accepted"], rows)


def format_pareto_front(title: str, front) -> str:
    """Format a Pareto front as an aligned table, one row per trade-off point.

    ``front`` duck-types :class:`repro.exploration.ParetoFront`: an iterable
    of points with an ``objectives`` vector ``(delta_max, mean_path_delay,
    load_imbalance, architecture_cost, bus_imbalance)`` and a ``candidate``
    carrying the priority function, (optionally) the sized platform and
    (optionally) explicit communication-to-bus pins.
    """
    rows = []
    for point in front:
        (
            delta_max,
            mean_path_delay,
            load_imbalance,
            architecture_cost,
            bus_imbalance,
        ) = point.objectives
        candidate = point.candidate
        if candidate.platform:
            platform = (
                f"{len(candidate.platform_processors)} PE + "
                f"{len(candidate.platform_buses)} bus"
            )
        else:
            platform = "-"
        pinned = len(candidate.communication_assignment)
        rows.append([
            f"{delta_max:g}",
            f"{mean_path_delay:.2f}",
            f"{load_imbalance:.3f}",
            f"{architecture_cost:g}",
            f"{bus_imbalance:.3f}",
            candidate.priority_function,
            platform,
            f"{pinned} pinned" if pinned else "derived",
        ])
    return format_table(
        title,
        ["delta_max", "mean delay", "imbalance", "arch cost", "bus imb",
         "priority", "platform", "comm"],
        rows,
    )


def format_exploration_comparison(
    title: str, results: Sequence[object]
) -> str:
    """Side-by-side summary of several exploration runs (one row per engine).

    ``results`` duck-types :class:`repro.exploration.ExplorationResult`.  The
    ``sched hits`` column reports the incremental evaluator's per-path schedule
    cache (``hits/probes``, see :class:`repro.exploration.StageStats`); runs
    without stage counters (staged evaluation off, process-mode pool) show
    ``-``.  The ``faults`` column summarises the resilience counters as
    ``r<retries> w<worker restarts> q<quarantined>`` (plus ``DEGRADED`` when
    the pool fell back to in-process evaluation); unarmed runs show ``-``.
    The ``wall`` column shows the run's total wall-clock time and the mean
    per evaluation (``total/mean``, from the metrics snapshot backing
    ``ExplorationResult.wall_seconds``); runs without metrics show ``-``.
    """
    rows = []
    for result in results:
        stages = getattr(result, "stages", None)
        if stages is not None:
            probes = stages.schedule_hits + stages.schedule_misses
            stage_cell = f"{stages.schedule_hits}/{probes}"
        else:
            stage_cell = "-"
        resilience = getattr(result, "resilience", None)
        if resilience is not None:
            fault_cell = (
                f"r{resilience.retries} w{resilience.worker_restarts}"
                f" q{resilience.quarantined}"
            )
            if resilience.degraded:
                fault_cell += " DEGRADED"
        else:
            fault_cell = "-"
        wall = getattr(result, "wall_seconds", None)
        if wall is not None:
            evaluations = result.evaluations or 1
            wall_cell = f"{wall:.2f}s/{1000.0 * wall / evaluations:.1f}ms"
        else:
            wall_cell = "-"
        rows.append([
            result.engine,
            result.initial.delta_max,
            result.best.delta_max,
            f"{result.improvement_percent:.2f}%",
            result.cycles,
            result.evaluations,
            result.cache.hits,
            stage_cell,
            fault_cell,
            wall_cell,
        ])
    return format_table(
        title,
        ["engine", "seed dmax", "best dmax", "gain", "cycles", "evals",
         "cache hits", "sched hits", "faults", "wall"],
        rows,
    )
