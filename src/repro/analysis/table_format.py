"""Pretty printing of schedule tables (the shape of Table 1 of the paper).

The schedule table is rendered with one row per process (plus one per
condition broadcast) and one column per condition-value conjunction, exactly
like Table 1: empty cells mean the process is never activated under that
column; a number is the activation time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..conditions import Conjunction
from ..scheduling.schedule_table import ScheduleTable


def format_schedule_table(
    table: ScheduleTable,
    process_order: Optional[Sequence[str]] = None,
    max_columns: Optional[int] = None,
) -> str:
    """Render a schedule table as fixed-width text.

    ``process_order`` selects and orders the rows (all rows by default);
    ``max_columns`` truncates very wide tables for readability.
    """
    columns = list(table.columns())
    if max_columns is not None:
        columns = columns[:max_columns]
    rows = list(process_order) if process_order is not None else list(table.process_names)

    headers = [str(column) for column in columns]
    name_width = max([len("process")] + [len(str(r)) for r in rows] + [9])
    widths = [max(len(header), 6) for header in headers]

    def format_row(label: str, cells: List[str]) -> str:
        body = " | ".join(cell.rjust(width) for cell, width in zip(cells, widths))
        return f"{label:<{name_width}} | {body}"

    lines = [format_row("process", headers)]
    lines.append("-" * len(lines[0]))
    for name in rows:
        cells = [_cell_for(table.process_entries(name), column) for column in columns]
        lines.append(format_row(str(name), cells))
    for condition in table.conditions:
        cells = [_cell_for(table.condition_entries(condition), column) for column in columns]
        lines.append(format_row(f"cond {condition}", cells))
    return "\n".join(lines)


def _cell_for(entries: Iterable, column: Conjunction) -> str:
    for entry in entries:
        if entry.column == column:
            return f"{entry.start:g}"
    return ""


def schedule_table_summary(table: ScheduleTable) -> Dict[str, float]:
    """Simple size metrics of a schedule table (rows, columns, entries)."""
    entries = sum(len(table.process_entries(name)) for name in table.process_names)
    entries += sum(len(table.condition_entries(c)) for c in table.conditions)
    return {
        "rows": float(len(table.process_names) + len(table.conditions)),
        "columns": float(len(table.columns())),
        "entries": float(entries),
    }


def format_condition_rows(table: ScheduleTable) -> str:
    """Just the condition-broadcast rows of the table (the last rows of Table 1)."""
    lines = []
    for condition in sorted(table.conditions, key=lambda c: c.name):
        cells = ", ".join(
            f"t={entry.start:g} [{entry.column}]"
            for entry in table.condition_entries(condition)
        )
        lines.append(f"{condition}: {cells}")
    return "\n".join(lines)
