"""ASCII Gantt charts of per-path schedules (the shape of Fig. 4).

The paper illustrates its adjustment step with Gantt charts of the optimal
and adjusted schedules of two alternative paths.  :func:`render_gantt` draws
the same kind of chart in plain text, one row per processing element, so that
schedules can be inspected in a terminal or embedded in reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..architecture.architecture import Architecture
from ..scheduling.schedule import PathSchedule, ScheduledTask


def render_gantt(
    schedule: PathSchedule,
    architecture: Architecture,
    width: int = 78,
    title: Optional[str] = None,
) -> str:
    """Render a path schedule as an ASCII Gantt chart.

    Each processing element gets one lane; every activity is drawn as a block
    of ``#`` characters preceded by its name.  Time is scaled so that the
    whole schedule fits into ``width`` characters.
    """
    horizon = max(schedule.delay, 1e-9)
    scale = (width - 1) / horizon

    def column(time: float) -> int:
        return min(width - 1, int(round(time * scale)))

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(
        (len(pe.name) for pe in architecture.processing_elements), default=4
    )
    lines.append(
        f"{'':<{label_width}}  0{'':<{max(0, width - 8)}}{horizon:g}"
    )
    for pe in architecture.processing_elements:
        tasks = schedule.tasks_on(pe)
        lane = _render_lane(tasks, column, width)
        lines.append(f"{pe.name:<{label_width}} |{lane}|")
    return "\n".join(lines)


def _render_lane(tasks: Sequence[ScheduledTask], column, width: int) -> str:
    lane = [" "] * width
    for task in tasks:
        start = column(task.start)
        end = max(start + 1, column(task.end))
        label = task.name if not task.is_broadcast else str(task.condition)
        for position in range(start, min(end, width)):
            lane[position] = "#"
        for offset, char in enumerate(label):
            position = start + offset
            if position < min(end, width):
                lane[position] = char
    return "".join(lane)


def render_schedule_listing(schedule: PathSchedule) -> str:
    """A textual listing of one path schedule, ordered by start time."""
    lines = [f"schedule of path {schedule.path.label} (delay {schedule.delay:g})"]
    for task in schedule.all_items_in_order():
        where = task.pe.name if task.pe is not None else "-"
        kind = "broadcast" if task.is_broadcast else "process"
        lines.append(
            f"  {task.start:>8.2f}  {task.name:<16} {kind:<9} on {where:<6} "
            f"for {task.duration:g}"
        )
    return "\n".join(lines)


def busy_fraction(
    schedule: PathSchedule, architecture: Architecture
) -> Dict[str, float]:
    """Utilisation of every sequential processing element over the schedule length."""
    horizon = max(schedule.delay, 1e-9)
    result: Dict[str, float] = {}
    for pe in architecture.processing_elements:
        if not pe.executes_sequentially:
            continue
        busy = sum(task.duration for task in schedule.tasks_on(pe))
        result[pe.name] = busy / horizon
    return result
