"""Persistence of system descriptions (graph + architecture + mapping) as JSON."""

from .serialization import (
    SerializationError,
    SystemDescription,
    architecture_from_dict,
    architecture_to_dict,
    load_system,
    save_system,
    system_from_dict,
    system_to_dict,
    validate_explore_request,
    validate_schedule_request,
    validate_sweep_request,
)

__all__ = [
    "SerializationError",
    "SystemDescription",
    "architecture_from_dict",
    "architecture_to_dict",
    "load_system",
    "save_system",
    "system_from_dict",
    "system_to_dict",
    "validate_explore_request",
    "validate_schedule_request",
    "validate_sweep_request",
]
