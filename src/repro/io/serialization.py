"""JSON (de)serialisation of systems: graphs, architectures and mappings.

A *system description* bundles everything the scheduler needs — the
conditional process graph, the target architecture and the mapping — into one
plain-dictionary document that can be stored as JSON, versioned alongside a
design, and fed to the command-line interface.  The format is deliberately
simple and explicit:

.. code-block:: json

    {
      "name": "demo",
      "architecture": {
        "condition_broadcast_time": 1.0,
        "processors": [{"name": "pe1", "kind": "programmable", "speed": 1.0}],
        "buses": [{"name": "bus1", "connects": ["pe1"]}]
      },
      "processes": [{"name": "P1", "execution_time": 3.0, "mapped_to": "pe1"}],
      "edges": [{"src": "P1", "dst": "P2", "condition": "C", "value": true,
                 "communication_time": 2.0}]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..architecture import Architecture, Mapping, PEKind, ProcessingElement
from ..conditions import Condition, Literal
from ..graph import (
    CPGBuilder,
    ConditionalProcessGraph,
    ExpandedGraph,
    expand_communications,
)


class SerializationError(ValueError):
    """Raised when a system description document is malformed."""


@dataclass
class SystemDescription:
    """A deserialised system: graph + architecture + mapping, ready to schedule."""

    name: str
    graph: ConditionalProcessGraph
    architecture: Architecture
    mapping: Mapping

    def expand(self) -> ExpandedGraph:
        """Insert communication processes according to the mapping."""
        return expand_communications(self.graph, self.mapping, self.architecture)


# -- writing -----------------------------------------------------------------------


def architecture_to_dict(architecture: Architecture) -> Dict[str, Any]:
    """Serialise an architecture (processors, buses, connectivity, tau0)."""
    processors = [
        {"name": pe.name, "kind": pe.kind.value, "speed": pe.speed}
        for pe in architecture.processors
    ]
    buses = [
        {
            "name": pe.name,
            "speed": pe.speed,
            "connects": [p.name for p in architecture.processors_on_bus(pe.name)],
        }
        for pe in architecture.buses
    ]
    return {
        "condition_broadcast_time": architecture.condition_broadcast_time,
        "processors": processors,
        "buses": buses,
    }


def system_to_dict(
    graph: ConditionalProcessGraph,
    architecture: Architecture,
    mapping: Mapping,
    name: Optional[str] = None,
) -> Dict[str, Any]:
    """Serialise a complete (process-level) system description."""
    processes: List[Dict[str, Any]] = []
    for process in graph.processes:
        if process.is_dummy:
            continue
        entry: Dict[str, Any] = {
            "name": process.name,
            "execution_time": process.execution_time,
        }
        if process.execution_times:
            entry["execution_times"] = dict(process.execution_times)
        if process.is_conjunction:
            entry["is_conjunction"] = True
        mapped = mapping.get(process.name)
        if mapped is not None:
            entry["mapped_to"] = mapped.name
        processes.append(entry)

    edges: List[Dict[str, Any]] = []
    for edge in graph.edges:
        if graph[edge.src].is_dummy or graph[edge.dst].is_dummy:
            continue
        entry = {"src": edge.src, "dst": edge.dst}
        if edge.communication_time:
            entry["communication_time"] = edge.communication_time
        if edge.condition is not None:
            entry["condition"] = edge.condition.condition.name
            entry["value"] = edge.condition.value
        edges.append(entry)

    return {
        "name": name or graph.name,
        "architecture": architecture_to_dict(architecture),
        "processes": processes,
        "edges": edges,
    }


def save_system(
    path: Union[str, Path],
    graph: ConditionalProcessGraph,
    architecture: Architecture,
    mapping: Mapping,
    name: Optional[str] = None,
) -> None:
    """Write a system description to a JSON file."""
    document = system_to_dict(graph, architecture, mapping, name)
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


# -- reading -----------------------------------------------------------------------


def _entry_dict(entry: Any, what: str) -> Dict[str, Any]:
    if not isinstance(entry, dict):
        raise SerializationError(f"{what} must be an object, got {entry!r}")
    return entry


def _entry_name(entry: Dict[str, Any], what: str) -> str:
    try:
        name = entry["name"]
    except KeyError as error:
        raise SerializationError(f"{what} {entry!r} is missing 'name'") from error
    if not isinstance(name, str) or not name:
        raise SerializationError(f"{what} name must be a non-empty string, got {name!r}")
    return name


def _entry_float(entry: Dict[str, Any], key: str, default: float, what: str) -> float:
    value = entry.get(key, default)
    try:
        return float(value)
    except (TypeError, ValueError) as error:
        raise SerializationError(
            f"{what} field {key!r} must be a number, got {value!r}"
        ) from error


def architecture_from_dict(document: Dict[str, Any]) -> Architecture:
    """Deserialise an architecture document."""
    document = _entry_dict(document, "architecture document")
    try:
        processor_docs = document["processors"]
    except KeyError as error:
        raise SerializationError("architecture document needs 'processors'") from error
    if not isinstance(processor_docs, list):
        raise SerializationError("'processors' must be a list of objects")
    processors = []
    for entry in processor_docs:
        entry = _entry_dict(entry, "processor entry")
        name = _entry_name(entry, "processor entry")
        kind = entry.get("kind", "programmable")
        try:
            pe_kind = PEKind(kind)
        except ValueError as error:
            raise SerializationError(f"unknown processing element kind {kind!r}") from error
        if pe_kind is PEKind.BUS:
            raise SerializationError("buses must be listed under 'buses'")
        processors.append(
            ProcessingElement(
                name, pe_kind, _entry_float(entry, "speed", 1.0, f"processor {name!r}")
            )
        )
    bus_docs = document.get("buses", [])
    if not isinstance(bus_docs, list):
        raise SerializationError("'buses' must be a list of objects")
    buses = []
    connectivity: Dict[str, List[str]] = {}
    for entry in bus_docs:
        entry = _entry_dict(entry, "bus entry")
        name = _entry_name(entry, "bus entry")
        buses.append(
            ProcessingElement(
                name, PEKind.BUS, _entry_float(entry, "speed", 1.0, f"bus {name!r}")
            )
        )
        if "connects" in entry:
            connectivity[name] = list(entry["connects"])
    try:
        return Architecture(
            processors,
            buses,
            condition_broadcast_time=_entry_float(
                document, "condition_broadcast_time", 1.0, "architecture"
            ),
            connectivity=connectivity or None,
        )
    except ValueError as error:
        raise SerializationError(f"invalid architecture: {error}") from error


def system_from_dict(document: Dict[str, Any]) -> SystemDescription:
    """Deserialise a complete system description.

    Schema violations — a missing section, a process mapped to an unknown
    processing element, an edge naming an undeclared process, a non-numeric
    time — raise :class:`SerializationError` naming the offending entry,
    never a bare ``KeyError``/``TypeError`` traceback.
    """
    document = _entry_dict(document, "system document")
    for key in ("architecture", "processes", "edges"):
        if key not in document:
            raise SerializationError(f"system document is missing {key!r}")
        if key != "architecture" and not isinstance(document[key], list):
            raise SerializationError(f"{key!r} must be a list of objects")
    architecture = architecture_from_dict(document["architecture"])
    name = document.get("name", "system")

    builder = CPGBuilder(name)
    mapping = Mapping(architecture)
    declared = set()
    for entry in document["processes"]:
        entry = _entry_dict(entry, "process entry")
        process_name = _entry_name(entry, "process entry")
        if "execution_time" not in entry:
            raise SerializationError(
                f"process {process_name!r} is missing 'execution_time'"
            )
        execution_time = _entry_float(
            entry, "execution_time", 0.0, f"process {process_name!r}"
        )
        declared.add(process_name)
        builder.process(
            process_name,
            execution_time,
            execution_times=entry.get("execution_times"),
            is_conjunction=bool(entry.get("is_conjunction", False)),
        )
        if "mapped_to" in entry:
            target = entry["mapped_to"]
            try:
                element = architecture[target]
            except KeyError as error:
                raise SerializationError(
                    f"process {process_name!r} is mapped to unknown "
                    f"processing element {target!r}"
                ) from error
            try:
                mapping.assign(process_name, element)
            except ValueError as error:
                raise SerializationError(
                    f"process {process_name!r} cannot be mapped to "
                    f"{target!r}: {error}"
                ) from error

    for entry in document["edges"]:
        entry = _entry_dict(entry, "edge entry")
        for key in ("src", "dst"):
            if key not in entry:
                raise SerializationError(f"edge entry {entry!r} is missing {key!r}")
            if entry[key] not in declared:
                raise SerializationError(
                    f"edge {entry.get('src')!r} -> {entry.get('dst')!r} names "
                    f"undeclared process {entry[key]!r}"
                )
        condition: Optional[Literal] = None
        if "condition" in entry:
            condition = Literal(
                Condition(entry["condition"]), bool(entry.get("value", True))
            )
        builder.edge(
            entry["src"],
            entry["dst"],
            condition=condition,
            communication_time=_entry_float(
                entry,
                "communication_time",
                0.0,
                f"edge {entry['src']!r} -> {entry['dst']!r}",
            ),
        )

    try:
        graph = builder.build()
    except (ValueError, RuntimeError) as error:
        raise SerializationError(f"invalid process graph: {error}") from error
    return SystemDescription(name, graph, architecture, mapping)


def load_system(path: Union[str, Path]) -> SystemDescription:
    """Read a system description from a JSON file."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise SerializationError(f"{path} is not valid JSON: {error}") from error
    return system_from_dict(document)


# -- service request schemas -------------------------------------------------
#
# Request documents of the ``repro-cpg serve`` HTTP API.  Validation follows
# the same contract as the system documents above: a malformed request raises
# :class:`SerializationError` naming the offending entry, so the service can
# answer 400 with an actionable message instead of a traceback.  Validators
# return a *normalised* copy with every default filled in — the job runner
# and the CLI client never re-derive defaults independently.

EXPLORE_ENGINE_CHOICES = ("tabu", "anneal", "genetic", "both", "all")
BUS_POLICY_CHOICES = ("least_index", "least_loaded")


def _request_bool(entry: Dict[str, Any], key: str, default: bool, what: str) -> bool:
    value = entry.get(key, default)
    if not isinstance(value, bool):
        raise SerializationError(
            f"{what} field {key!r} must be a boolean, got {value!r}"
        )
    return value


def _request_int(
    entry: Dict[str, Any],
    key: str,
    default: Optional[int],
    what: str,
    minimum: Optional[int] = None,
) -> Optional[int]:
    value = entry.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise SerializationError(
            f"{what} field {key!r} must be an integer, got {value!r}"
        )
    if minimum is not None and value < minimum:
        raise SerializationError(
            f"{what} field {key!r} must be >= {minimum}, got {value}"
        )
    return value


def _reject_unknown_keys(
    entry: Dict[str, Any], allowed: tuple, what: str
) -> None:
    for key in entry:
        if key not in allowed:
            raise SerializationError(
                f"{what} has unknown field {key!r} "
                f"(allowed: {', '.join(sorted(allowed))})"
            )


def validate_explore_request(document: Any) -> Dict[str, Any]:
    """Validate + normalise one exploration-job request document.

    The document mirrors the ``repro-cpg explore`` flags: exactly one
    problem source — ``"fig1": true`` (with optional ``"fig1_buses"``), an
    inline ``"system"`` description (the schema at the top of this module),
    or ``"random": {"nodes": N, "paths": P}`` — plus search settings
    (``seed``, ``engine``, ``cycles``, ``neighbors``, ``population``,
    ``stall``, ``pareto``, ``map_communications``, ``bus_policy`` and an
    optional ``sizing`` bounds object).  Every default matches the CLI's, so
    a served job and a one-shot run of the same request produce identical
    result documents.
    """
    document = _entry_dict(document, "explore request")
    what = "explore request"
    allowed = (
        "fig1", "fig1_buses", "system", "random", "seed", "engine", "cycles",
        "neighbors", "population", "stall", "pareto", "map_communications",
        "bus_policy", "sizing",
    )
    _reject_unknown_keys(document, allowed, what)
    fig1 = _request_bool(document, "fig1", False, what)
    system = document.get("system")
    random_spec = document.get("random")
    sources = sum(1 for chosen in (fig1, system is not None, random_spec is not None) if chosen)
    if sources != 1:
        raise SerializationError(
            "explore request needs exactly one problem source: "
            "'fig1': true, an inline 'system' description, or 'random'"
        )
    if system is not None:
        # Build it once now so a malformed system names its offender at
        # submission time, not inside the job.
        system_from_dict(system)
    random_normalised = None
    if random_spec is not None:
        random_spec = _entry_dict(random_spec, "explore request 'random'")
        _reject_unknown_keys(random_spec, ("nodes", "paths"), "explore request 'random'")
        random_normalised = {
            "nodes": _request_int(
                random_spec, "nodes", 40, "explore request 'random'", minimum=2
            ),
            "paths": _request_int(
                random_spec, "paths", 8, "explore request 'random'", minimum=1
            ),
        }
    engine = document.get("engine", "tabu")
    if engine not in EXPLORE_ENGINE_CHOICES:
        raise SerializationError(
            f"explore request field 'engine' must be one of "
            f"{', '.join(EXPLORE_ENGINE_CHOICES)}, got {engine!r}"
        )
    bus_policy = document.get("bus_policy", "least_index")
    if bus_policy not in BUS_POLICY_CHOICES:
        raise SerializationError(
            f"explore request field 'bus_policy' must be one of "
            f"{', '.join(BUS_POLICY_CHOICES)}, got {bus_policy!r}"
        )
    sizing = None
    if document.get("sizing") is not None:
        sizing_doc = _entry_dict(document["sizing"], "explore request 'sizing'")
        sizing_allowed = (
            "min_processors", "max_processors", "min_buses", "max_buses"
        )
        _reject_unknown_keys(sizing_doc, sizing_allowed, "explore request 'sizing'")
        sizing = {
            "min_processors": _request_int(
                sizing_doc, "min_processors", 1, "explore request 'sizing'", minimum=1
            ),
            "max_processors": _request_int(
                sizing_doc, "max_processors", None, "explore request 'sizing'", minimum=1
            ),
            "min_buses": _request_int(
                sizing_doc, "min_buses", 1, "explore request 'sizing'", minimum=1
            ),
            "max_buses": _request_int(
                sizing_doc, "max_buses", None, "explore request 'sizing'", minimum=1
            ),
        }
    return {
        "fig1": fig1,
        "fig1_buses": _request_int(document, "fig1_buses", 1, what, minimum=1),
        "system": system,
        "random": random_normalised,
        "seed": _request_int(document, "seed", 0, what),
        "engine": engine,
        "cycles": _request_int(document, "cycles", 40, what, minimum=1),
        "neighbors": _request_int(document, "neighbors", 8, what, minimum=1),
        "population": _request_int(document, "population", 16, what, minimum=2),
        "stall": _request_int(document, "stall", 0, what, minimum=0),
        "pareto": _request_bool(document, "pareto", False, what),
        "map_communications": _request_bool(
            document, "map_communications", False, what
        ),
        "bus_policy": bus_policy,
        "sizing": sizing,
    }


def validate_schedule_request(document: Any) -> Dict[str, Any]:
    """Validate + normalise one synchronous schedule-query document.

    ``{"system": <system description>, "validate": bool}`` — the response is
    the same JSON document ``repro-cpg schedule --json`` prints.
    """
    document = _entry_dict(document, "schedule request")
    _reject_unknown_keys(document, ("system", "validate"), "schedule request")
    if "system" not in document:
        raise SerializationError("schedule request is missing 'system'")
    system_from_dict(document["system"])
    return {
        "system": document["system"],
        "validate": _request_bool(document, "validate", False, "schedule request"),
    }


def validate_sweep_request(document: Any) -> Dict[str, Any]:
    """Validate + normalise one synchronous sweep-query document.

    ``{"nodes": [..], "paths": [..], "graphs": N}`` — the response is the
    same JSON document ``repro-cpg sweep --json`` prints.
    """
    document = _entry_dict(document, "sweep request")
    _reject_unknown_keys(document, ("nodes", "paths", "graphs"), "sweep request")
    sizes = document.get("nodes", [40])
    path_counts = document.get("paths", [4, 8])
    for key, values in (("nodes", sizes), ("paths", path_counts)):
        if not isinstance(values, list) or not values:
            raise SerializationError(
                f"sweep request field {key!r} must be a non-empty list of integers"
            )
        for value in values:
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise SerializationError(
                    f"sweep request field {key!r} must contain positive "
                    f"integers, got {value!r}"
                )
    return {
        "nodes": sizes,
        "paths": path_counts,
        "graphs": _request_int(document, "graphs", 2, "sweep request", minimum=1),
    }
