"""JSON (de)serialisation of systems: graphs, architectures and mappings.

A *system description* bundles everything the scheduler needs — the
conditional process graph, the target architecture and the mapping — into one
plain-dictionary document that can be stored as JSON, versioned alongside a
design, and fed to the command-line interface.  The format is deliberately
simple and explicit:

.. code-block:: json

    {
      "name": "demo",
      "architecture": {
        "condition_broadcast_time": 1.0,
        "processors": [{"name": "pe1", "kind": "programmable", "speed": 1.0}],
        "buses": [{"name": "bus1", "connects": ["pe1"]}]
      },
      "processes": [{"name": "P1", "execution_time": 3.0, "mapped_to": "pe1"}],
      "edges": [{"src": "P1", "dst": "P2", "condition": "C", "value": true,
                 "communication_time": 2.0}]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..architecture import Architecture, Mapping, PEKind, ProcessingElement
from ..conditions import Condition, Literal
from ..graph import (
    CPGBuilder,
    ConditionalProcessGraph,
    ExpandedGraph,
    expand_communications,
)


class SerializationError(ValueError):
    """Raised when a system description document is malformed."""


@dataclass
class SystemDescription:
    """A deserialised system: graph + architecture + mapping, ready to schedule."""

    name: str
    graph: ConditionalProcessGraph
    architecture: Architecture
    mapping: Mapping

    def expand(self) -> ExpandedGraph:
        """Insert communication processes according to the mapping."""
        return expand_communications(self.graph, self.mapping, self.architecture)


# -- writing -----------------------------------------------------------------------


def architecture_to_dict(architecture: Architecture) -> Dict[str, Any]:
    """Serialise an architecture (processors, buses, connectivity, tau0)."""
    processors = [
        {"name": pe.name, "kind": pe.kind.value, "speed": pe.speed}
        for pe in architecture.processors
    ]
    buses = [
        {
            "name": pe.name,
            "speed": pe.speed,
            "connects": [p.name for p in architecture.processors_on_bus(pe.name)],
        }
        for pe in architecture.buses
    ]
    return {
        "condition_broadcast_time": architecture.condition_broadcast_time,
        "processors": processors,
        "buses": buses,
    }


def system_to_dict(
    graph: ConditionalProcessGraph,
    architecture: Architecture,
    mapping: Mapping,
    name: Optional[str] = None,
) -> Dict[str, Any]:
    """Serialise a complete (process-level) system description."""
    processes: List[Dict[str, Any]] = []
    for process in graph.processes:
        if process.is_dummy:
            continue
        entry: Dict[str, Any] = {
            "name": process.name,
            "execution_time": process.execution_time,
        }
        if process.execution_times:
            entry["execution_times"] = dict(process.execution_times)
        if process.is_conjunction:
            entry["is_conjunction"] = True
        mapped = mapping.get(process.name)
        if mapped is not None:
            entry["mapped_to"] = mapped.name
        processes.append(entry)

    edges: List[Dict[str, Any]] = []
    for edge in graph.edges:
        if graph[edge.src].is_dummy or graph[edge.dst].is_dummy:
            continue
        entry = {"src": edge.src, "dst": edge.dst}
        if edge.communication_time:
            entry["communication_time"] = edge.communication_time
        if edge.condition is not None:
            entry["condition"] = edge.condition.condition.name
            entry["value"] = edge.condition.value
        edges.append(entry)

    return {
        "name": name or graph.name,
        "architecture": architecture_to_dict(architecture),
        "processes": processes,
        "edges": edges,
    }


def save_system(
    path: Union[str, Path],
    graph: ConditionalProcessGraph,
    architecture: Architecture,
    mapping: Mapping,
    name: Optional[str] = None,
) -> None:
    """Write a system description to a JSON file."""
    document = system_to_dict(graph, architecture, mapping, name)
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


# -- reading -----------------------------------------------------------------------


def architecture_from_dict(document: Dict[str, Any]) -> Architecture:
    """Deserialise an architecture document."""
    try:
        processor_docs = document["processors"]
    except KeyError as error:
        raise SerializationError("architecture document needs 'processors'") from error
    processors = []
    for entry in processor_docs:
        kind = entry.get("kind", "programmable")
        try:
            pe_kind = PEKind(kind)
        except ValueError as error:
            raise SerializationError(f"unknown processing element kind {kind!r}") from error
        if pe_kind is PEKind.BUS:
            raise SerializationError("buses must be listed under 'buses'")
        processors.append(
            ProcessingElement(entry["name"], pe_kind, float(entry.get("speed", 1.0)))
        )
    buses = []
    connectivity: Dict[str, List[str]] = {}
    for entry in document.get("buses", []):
        buses.append(
            ProcessingElement(entry["name"], PEKind.BUS, float(entry.get("speed", 1.0)))
        )
        if "connects" in entry:
            connectivity[entry["name"]] = list(entry["connects"])
    return Architecture(
        processors,
        buses,
        condition_broadcast_time=float(document.get("condition_broadcast_time", 1.0)),
        connectivity=connectivity or None,
    )


def system_from_dict(document: Dict[str, Any]) -> SystemDescription:
    """Deserialise a complete system description."""
    for key in ("architecture", "processes", "edges"):
        if key not in document:
            raise SerializationError(f"system document is missing {key!r}")
    architecture = architecture_from_dict(document["architecture"])
    name = document.get("name", "system")

    builder = CPGBuilder(name)
    mapping = Mapping(architecture)
    for entry in document["processes"]:
        try:
            process_name = entry["name"]
            execution_time = float(entry["execution_time"])
        except KeyError as error:
            raise SerializationError(f"process entry {entry!r} is incomplete") from error
        builder.process(
            process_name,
            execution_time,
            execution_times=entry.get("execution_times"),
            is_conjunction=bool(entry.get("is_conjunction", False)),
        )
        if "mapped_to" in entry:
            mapping.assign(process_name, architecture[entry["mapped_to"]])

    for entry in document["edges"]:
        condition: Optional[Literal] = None
        if "condition" in entry:
            condition = Literal(
                Condition(entry["condition"]), bool(entry.get("value", True))
            )
        builder.edge(
            entry["src"],
            entry["dst"],
            condition=condition,
            communication_time=float(entry.get("communication_time", 0.0)),
        )

    graph = builder.build()
    return SystemDescription(name, graph, architecture, mapping)


def load_system(path: Union[str, Path]) -> SystemDescription:
    """Read a system description from a JSON file."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise SerializationError(f"{path} is not valid JSON: {error}") from error
    return system_from_dict(document)
