"""End-to-end validation of a merge result.

Combines the static requirement checks of the schedule table with a dynamic
execution of every alternative path by the run-time simulator, and cross-checks
the analytically computed worst-case delay against the simulated one.  Tests
and benchmarks use this as the single entry point for "is this schedule table
actually correct?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..architecture.architecture import Architecture
from ..architecture.mapping import Mapping
from ..graph.cpg import ConditionalProcessGraph
from ..graph.paths import AlternativePath, PathEnumerator
from ..scheduling.merging import MergeResult
from ..scheduling.schedule_table import ScheduleTable
from .runtime import RuntimeSimulator, SimulationError


@dataclass
class ValidationReport:
    """Per-path delays and the validated worst-case delay of a schedule table."""

    path_delays: Dict[str, float] = field(default_factory=dict)
    worst_case_delay: float = 0.0
    paths_checked: int = 0

    @property
    def best_case_delay(self) -> float:
        return min(self.path_delays.values(), default=0.0)


def validate_schedule_table(
    graph: ConditionalProcessGraph,
    mapping: Mapping,
    table: ScheduleTable,
    architecture: Optional[Architecture] = None,
    paths: Optional[List[AlternativePath]] = None,
) -> ValidationReport:
    """Statically and dynamically validate a schedule table.

    Raises :class:`~repro.scheduling.schedule_table.ScheduleTableError` or
    :class:`SimulationError` when a requirement is violated; returns the
    per-path delays otherwise.
    """
    if paths is None:
        paths = PathEnumerator(graph).paths()
    table.check_requirements(graph, paths)
    simulator = RuntimeSimulator(graph, mapping, architecture)
    report = ValidationReport()
    for path in paths:
        trace = simulator.execute(table, path.assignment, path)
        report.path_delays[str(path.label)] = trace.delay
        report.worst_case_delay = max(report.worst_case_delay, trace.delay)
        report.paths_checked += 1
    return report


def validate_merge_result(
    graph: ConditionalProcessGraph,
    mapping: Mapping,
    result: MergeResult,
    architecture: Optional[Architecture] = None,
) -> ValidationReport:
    """Validate a full merge result, including its reported delays.

    Checks that the analytically computed ``delta_max`` matches the simulated
    worst case and that it is never smaller than ``delta_M`` (the delay of the
    longest individual path, a lower bound the paper proves).
    """
    report = validate_schedule_table(
        graph, mapping, result.table, architecture, result.paths or None
    )
    if abs(report.worst_case_delay - result.delta_max) > 1e-6:
        raise SimulationError(
            f"analytic worst-case delay {result.delta_max:g} does not match the "
            f"simulated worst case {report.worst_case_delay:g}"
        )
    if result.delta_max + 1e-9 < result.delta_m:
        raise SimulationError(
            f"delta_max ({result.delta_max:g}) is smaller than delta_M "
            f"({result.delta_m:g}), which is impossible"
        )
    return report
