"""Distributed run-time execution of a schedule table.

The paper assumes a very simple non-preemptive scheduler on every
programmable processor and bus: it looks up the schedule table and activates a
process at the tabulated time as soon as the column's condition values are
known locally.  This module simulates that execution for one complete
condition assignment and checks, dynamically, everything the static table
checks cannot see:

* inputs have actually arrived when a process is activated;
* the column used for the activation only involves condition values already
  known on the executing processing element (requirement 4);
* no two activities overlap on a sequential processing element;
* the delay equals the activation time of the sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping as TMapping, Optional, Tuple

from ..architecture.architecture import Architecture
from ..architecture.mapping import Mapping
from ..architecture.processing_element import ProcessingElement
from ..conditions import Condition
from ..graph.cpg import ConditionalProcessGraph
from ..graph.paths import AlternativePath, PathEnumerator
from ..scheduling.schedule_table import ScheduleTable

_EPSILON = 1e-6


class SimulationError(RuntimeError):
    """Raised when executing a schedule table violates the execution model."""


@dataclass(frozen=True)
class ExecutedActivity:
    """One activity (process execution or condition broadcast) of a simulation run."""

    name: str
    start: float
    end: float
    pe: Optional[ProcessingElement]
    condition: Optional[Condition] = None

    @property
    def is_broadcast(self) -> bool:
        return self.condition is not None


@dataclass
class ExecutionTrace:
    """The outcome of executing the schedule table for one condition assignment."""

    assignment: Dict[Condition, bool]
    activities: List[ExecutedActivity] = field(default_factory=list)
    delay: float = 0.0
    condition_determined: Dict[Condition, float] = field(default_factory=dict)
    condition_broadcast_end: Dict[Condition, float] = field(default_factory=dict)

    def activity(self, name: str) -> ExecutedActivity:
        for item in self.activities:
            if item.name == name and not item.is_broadcast:
                return item
        raise KeyError(f"no executed activity named {name!r}")

    def executed_names(self) -> Tuple[str, ...]:
        return tuple(item.name for item in self.activities if not item.is_broadcast)


class RuntimeSimulator:
    """Executes a schedule table under the paper's distributed execution model."""

    def __init__(
        self,
        graph: ConditionalProcessGraph,
        mapping: Mapping,
        architecture: Optional[Architecture] = None,
        strict: bool = True,
    ) -> None:
        self._graph = graph
        self._mapping = mapping
        self._architecture = architecture or mapping.architecture
        self._strict = strict
        self._disjunctions = graph.disjunction_processes()
        self._enumerator = PathEnumerator(graph)

    # -- public API ----------------------------------------------------------------

    def execute(
        self,
        table: ScheduleTable,
        assignment: TMapping[Condition, bool],
        path: Optional[AlternativePath] = None,
    ) -> ExecutionTrace:
        """Execute the table for one complete condition assignment."""
        if path is None:
            path = self._enumerator.path_for(assignment)
        trace = ExecutionTrace(assignment=dict(path.assignment))

        starts: Dict[str, float] = {}
        ends: Dict[str, float] = {}
        for name in path.active_processes:
            process = self._graph[name]
            if process.is_dummy:
                continue
            start = table.activation_time(name, path.assignment)
            if start is None:
                raise SimulationError(
                    f"no activation time for active process {name!r} on path {path.label}"
                )
            pe = self._mapping.get(name)
            duration = process.duration_on(pe)
            starts[name] = start
            ends[name] = start + duration
            trace.activities.append(
                ExecutedActivity(name, start, start + duration, pe)
            )

        self._record_condition_times(table, path, ends, trace)

        if self._strict:
            self._check_dependencies(path, starts, ends)
            self._check_condition_knowledge(table, path, starts, trace)
            self._check_resources(trace)

        trace.delay = max(ends.values(), default=0.0)
        trace.activities.sort(key=lambda a: (a.start, a.name))
        return trace

    def worst_case_delay(self, table: ScheduleTable) -> Tuple[float, ExecutionTrace]:
        """Execute every alternative path and return the worst delay and its trace."""
        worst: Optional[ExecutionTrace] = None
        for path in self._enumerator.paths():
            trace = self.execute(table, path.assignment, path)
            if worst is None or trace.delay > worst.delay:
                worst = trace
        assert worst is not None
        return worst.delay, worst

    def all_delays(self, table: ScheduleTable) -> Dict[str, float]:
        """Delay of every alternative path, keyed by the path label string."""
        return {
            str(path.label): self.execute(table, path.assignment, path).delay
            for path in self._enumerator.paths()
        }

    # -- internals ---------------------------------------------------------------------

    def _record_condition_times(
        self,
        table: ScheduleTable,
        path: AlternativePath,
        ends: Dict[str, float],
        trace: ExecutionTrace,
    ) -> None:
        tau0 = self._architecture.condition_broadcast_time
        needs_broadcast = len(self._architecture.processors) > 1 and bool(
            self._architecture.broadcast_buses()
        )
        for name, condition in self._disjunctions.items():
            if name not in ends:
                continue
            determined = ends[name]
            trace.condition_determined[condition] = determined
            broadcast_start = table.broadcast_time(condition, path.assignment)
            if broadcast_start is None or not needs_broadcast:
                trace.condition_broadcast_end[condition] = determined
                continue
            if broadcast_start + _EPSILON < determined and self._strict:
                raise SimulationError(
                    f"broadcast of condition {condition} starts at "
                    f"{broadcast_start:g}, before the condition is computed at "
                    f"{determined:g}"
                )
            bus = self._broadcast_bus(table, condition, path)
            end = broadcast_start + tau0
            trace.condition_broadcast_end[condition] = end
            trace.activities.append(
                ExecutedActivity(f"cond:{condition}", broadcast_start, end, bus, condition)
            )

    def _broadcast_bus(
        self, table: ScheduleTable, condition: Condition, path: AlternativePath
    ) -> Optional[ProcessingElement]:
        for entry in table.condition_entries(condition):
            if entry.column.satisfied_by_partial(path.assignment):
                return entry.pe
        return None

    def _condition_known_on(
        self,
        condition: Condition,
        pe: Optional[ProcessingElement],
        trace: ExecutionTrace,
    ) -> float:
        determined = trace.condition_determined.get(condition)
        if determined is None:
            return float("inf")
        origin_name = self._graph.disjunction_process_of(condition)
        origin_pe = self._mapping.get(origin_name)
        if pe is not None and origin_pe is not None and pe == origin_pe:
            return determined
        return trace.condition_broadcast_end.get(condition, determined)

    def _check_dependencies(
        self,
        path: AlternativePath,
        starts: Dict[str, float],
        ends: Dict[str, float],
    ) -> None:
        for name in starts:
            for pred in self._graph.active_predecessors(name, path.assignment):
                if self._graph[pred].is_dummy:
                    continue
                if pred not in ends:
                    raise SimulationError(
                        f"active predecessor {pred!r} of {name!r} was never executed"
                    )
                if starts[name] + _EPSILON < ends[pred]:
                    raise SimulationError(
                        f"process {name!r} starts at {starts[name]:g} before its "
                        f"input from {pred!r} arrives at {ends[pred]:g}"
                    )

    def _check_condition_knowledge(
        self,
        table: ScheduleTable,
        path: AlternativePath,
        starts: Dict[str, float],
        trace: ExecutionTrace,
    ) -> None:
        for name, start in starts.items():
            pe = self._mapping.get(name)
            applicable = [
                entry
                for entry in table.process_entries(name)
                if entry.column.satisfied_by_partial(path.assignment)
                and abs(entry.start - start) < _EPSILON
            ]
            for entry in applicable:
                for literal in entry.column.literals:
                    known = self._condition_known_on(literal.condition, pe, trace)
                    if start + _EPSILON < known:
                        raise SimulationError(
                            f"requirement 4 violated: {name!r} is activated at "
                            f"{start:g} using condition {literal.condition}, which "
                            f"is only known on {pe} at {known:g}"
                        )

    def _check_resources(self, trace: ExecutionTrace) -> None:
        per_pe: Dict[str, List[ExecutedActivity]] = {}
        for activity in trace.activities:
            if activity.pe is None or not activity.pe.executes_sequentially:
                continue
            per_pe.setdefault(activity.pe.name, []).append(activity)
        for pe_name, activities in per_pe.items():
            activities.sort(key=lambda a: (a.start, a.end))
            for first, second in zip(activities, activities[1:]):
                if second.start + _EPSILON < first.end:
                    raise SimulationError(
                        f"activities {first.name!r} and {second.name!r} overlap on "
                        f"{pe_name}: [{first.start:g}, {first.end:g}) vs start "
                        f"{second.start:g}"
                    )
