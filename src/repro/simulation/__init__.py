"""Run-time execution model: simulate a schedule table and validate it."""

from .runtime import ExecutedActivity, ExecutionTrace, RuntimeSimulator, SimulationError
from .validation import ValidationReport, validate_merge_result, validate_schedule_table

__all__ = [
    "ExecutedActivity",
    "ExecutionTrace",
    "RuntimeSimulator",
    "SimulationError",
    "ValidationReport",
    "validate_merge_result",
    "validate_schedule_table",
]
