"""Capture golden schedule tables for the equivalence regression test.

Runs ``merge_schedules`` on the Fig. 1 example, one ATM OAM mode and ten
seeded random CPGs, and serialises every table entry (row, column, start,
processing element) to ``tests/data/golden_tables.json``.  The recorded
output pins down the exact tables the seed implementation produced; the
golden test replays the same workloads and asserts byte-identical tables,
so any scheduler or condition-algebra optimisation that changes results is
caught immediately.

Usage::

    PYTHONPATH=src python scripts/capture_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.atm import build_mode1, build_oam_architecture, candidate_mappings
from repro.atm.processors import table2_architecture_configs
from repro.data import load_fig1_example
from repro.generator import generate_system
from repro.graph import expand_communications
from repro.scheduling import ScheduleMerger

OUTPUT = Path(__file__).resolve().parent.parent / "tests" / "data" / "golden_tables.json"

#: The ten seeded random systems recorded in the golden file.
RANDOM_CASES = [
    {"nodes": 40 + 10 * i, "alternative_paths": 4 + (i % 4) * 2, "seed": i}
    for i in range(10)
]


def serialize_table(result) -> dict:
    """Deterministic JSON form of a merge result's schedule table."""
    table = result.table
    process_rows = {}
    for name in sorted(table.process_names):
        entries = sorted(
            table.process_entries(name), key=lambda e: (e.start, str(e.column))
        )
        process_rows[name] = [
            {
                "column": str(entry.column),
                "start": round(entry.start, 6),
                "pe": entry.pe.name if entry.pe is not None else None,
            }
            for entry in entries
        ]
    condition_rows = {}
    for condition in sorted(table.conditions, key=str):
        entries = sorted(
            table.condition_entries(condition), key=lambda e: (e.start, str(e.column))
        )
        condition_rows[str(condition)] = [
            {
                "column": str(entry.column),
                "start": round(entry.start, 6),
                "pe": entry.pe.name if entry.pe is not None else None,
            }
            for entry in entries
        ]
    return {
        "process_rows": process_rows,
        "condition_rows": condition_rows,
        "delta_m": round(result.delta_m, 6),
        "delta_max": round(result.delta_max, 6),
    }


def merge_fig1():
    example = load_fig1_example()
    return ScheduleMerger(
        example.graph, example.expanded_mapping, example.architecture
    ).merge()


def merge_atm():
    mode = build_mode1()
    config = table2_architecture_configs()[0]
    architecture = build_oam_architecture(config)
    _, _, mapping = candidate_mappings(mode, architecture)[0]
    expanded = expand_communications(mode.graph, mapping, architecture)
    return ScheduleMerger(expanded.graph, expanded.mapping, architecture).merge()


def merge_random(case: dict):
    system = generate_system(**case)
    return ScheduleMerger(
        system.graph, system.expanded_mapping, system.architecture
    ).merge()


def capture() -> dict:
    golden = {"fig1": serialize_table(merge_fig1()), "atm_mode1": serialize_table(merge_atm())}
    for case in RANDOM_CASES:
        key = f"random_n{case['nodes']}_p{case['alternative_paths']}_s{case['seed']}"
        golden[key] = serialize_table(merge_random(case))
    return golden


def main() -> None:
    golden = capture()
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    total = sum(
        len(entries)
        for case in golden.values()
        for rows in (case["process_rows"], case["condition_rows"])
        for entries in rows.values()
    )
    print(f"wrote {OUTPUT} ({len(golden)} workloads, {total} table entries)")


if __name__ == "__main__":
    main()
