"""Perf-core benchmark harness: merge wall-time vs. process count.

Measures ``ScheduleMerger.merge`` on the :data:`LARGE_SCALE_PRESETS` random
systems (60 to 480 generated nodes, i.e. up to ~840 expanded processes) and
writes ``BENCH_core.json`` at the repository root.  Every record carries both
the frozen seed-implementation timing (measured once at the pre-optimisation
commit, on the same grid) and the current timing, so the file is a perf
trajectory every later PR can extend and regress against.

Modes::

    PYTHONPATH=src python scripts/run_benchmarks.py            # measure + rewrite BENCH_core.json
    PYTHONPATH=src python scripts/run_benchmarks.py --check    # exit 1 on >25% regression
    PYTHONPATH=src python scripts/run_benchmarks.py --record resilience
                                                # re-measure one record in place

``run`` ends with a one-line-per-record summary table of the whole committed
trajectory (merge grid, exploration, genetic, comm_mapping, incremental,
resilience) so CI logs show it at a glance.

``--check`` re-measures the reference workload only and fails (exit 1) when
its merge time regresses more than ``--tolerance`` (default 0.25) against the
committed baseline.  It then replays the genetic, communication-mapping,
incremental-evaluation and resilience records (determinism anchors exactly;
timings within tolerance; the incremental speedup against its floor; the
fault-free resilience overhead under its ceiling).  The limit is scaled by a host-speed calibration (a fixed
pure-Python workload timed both at baseline capture and at check time), so a
machine slower than the baseline host is not flagged as a regression.  The
check is also wired into tier-1 as a pytest smoke test
(``tests/test_perf_regression.py``) with a relaxed factor, so a catastrophic
slowdown fails the ordinary test run while timer noise on a busy machine does
not.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = ROOT / "BENCH_core.json"

#: Merge wall-time of the seed implementation (best of 3, measured on the
#: same presets/host at the commit immediately before the bitmask +
#: incremental-scheduler rework).  Frozen so speedups stay comparable.
SEED_MERGE_SECONDS = {
    "small": 0.054,
    "medium": 0.211,
    "large": 1.306,
    "xlarge": 4.106,
}

DEFAULT_REFERENCE = "medium"
DEFAULT_TOLERANCE = 0.25

#: Exploration-evaluator benchmark workload: a seeded 40-node/8-path system,
#: one neighbourhood of distinct candidates, replayed for several passes the
#: way local search revisits design points (undone moves, a second engine
#: re-walking the same region, annealing bouncing around a basin).
EXPLORATION_WORKLOAD = {
    "nodes": 40,
    "alternative_paths": 8,
    "seed": 11,
    "distinct_candidates": 24,
    "passes": 3,
}

#: Genetic-engine benchmark workload: a seeded system explored with the
#: NSGA-style engine, architecture sizing enabled.  Besides the timing, the
#: record freezes the final Pareto-front objective vectors — the engine is
#: deterministic per seed and pure Python, so ``--check`` can verify the
#: front reproduces bit-exactly on any host (a non-flaky determinism gate on
#: top of the host-calibrated timing gate).
GENETIC_WORKLOAD = {
    "nodes": 24,
    "alternative_paths": 4,
    "seed": 5,
    "generations": 6,
    "population": 10,
}

#: The genetic timing gate is more tolerant than the merge gate: one run
#: covers population-dynamics overhead on top of ~70 merges, so it is noisier.
GENETIC_TOLERANCE = 0.5

#: Communication-mapping benchmark workload: the paper's Fig. 1 graph on a
#: *two-bus* variant of its platform, explored twice with the same
#: engine/seed/cycle budget — once with the derived (least-index) bus
#: assignment only, once with communication mapping as an explored dimension.
#: Both searches are seeded pure Python, so the recorded best costs double as
#: a determinism anchor, and the mapped run beating the derived run is the
#: frozen acceptance fact of the communication-mapping work.
COMM_MAPPING_WORKLOAD = {
    "fig1_buses": 2,
    "engine": "tabu",
    "seed": 1,
    "cycles": 16,
    "neighbors": 6,
}

COMM_MAPPING_TOLERANCE = 0.5

#: Incremental-evaluation benchmark workload: a *move-local* candidate
#: stream — a seeded walk where every candidate differs from the previous
#: design point by one local move (one process remapped, or one message
#: pinned to a different bus), the shape every engine's neighbourhood
#: produces — scored twice over distinct candidates only: once through the
#: full expand-schedule-merge pipeline per candidate, once through the
#: sub-fingerprint stage caches (`repro.exploration.StageCache`).  The
#: platform (6 programmable processors, 2 buses) sits inside the paper's
#: experimental range of 1-11 processors and 1-8 buses.  Both arms are pure,
#: so every per-candidate evaluation must agree bit-exactly; the frozen best
#: cost doubles as the determinism anchor.  The speedup is a ratio of two
#: measurements on the same host, so ``--check`` gates it unscaled.
INCREMENTAL_WORKLOAD = {
    "nodes": 80,
    "alternative_paths": 8,
    "programmable_processors": 6,
    "buses": 2,
    "seed": 11,
    "stream_length": 140,
    "advance_probability": 0.3,
    "repeats": 2,
}

#: ``--check`` floor on the re-measured incremental speedup.  Recalibrated
#: after the flat schedule kernel landed: the full-pipeline arm is
#: merge-dominated, so roughly halving the merge kernel compressed the
#: staged-vs-full ratio from ~2.1x to ~1.7x.  The floor is deliberately
#: looser than the capture so a busy CI host does not flag phantom
#: regressions, while a genuinely broken stage cache (speedup ~1x) fails.
INCREMENTAL_MIN_SPEEDUP = 1.4

#: Flat-kernel benchmark workload: the xlarge merge-grid preset re-merged
#: with the packed-column schedule kernel (int-packed condition masks and
#: times, index-parallel dispatch loops).  ``pre_flat`` freezes the committed
#: xlarge grid timing — and the host calibration it was captured with — at
#: the commit immediately *before* the flat kernel landed, so the record
#: keeps measuring the kernel's win even after the grid records themselves
#: are regenerated on top of it.  ``delta_max`` is the frozen determinism
#: anchor: the flat kernel is a representation change, so the merged
#: worst-case delay must reproduce bit-exactly on any host.
MERGE_FLAT_WORKLOAD = {
    "preset": "xlarge",
    "repeats": 6,
    "pre_flat_merge_seconds": 0.2453,
    "pre_flat_calibration_seconds": 0.0237,
}

#: ``--check`` floor on the host-normalised flat-kernel speedup over the
#: frozen pre-flat grid timing.  Capture measured ~1.9x; the floor is looser
#: so timer noise on a busy host does not flag phantom regressions, while
#: actually losing the flat kernel (speedup ~1x) fails.
MERGE_FLAT_MIN_SPEEDUP = 1.7

#: Resilience benchmark workload: the fault-free cost of arming the resilient
#: evaluation runtime.  A prefix of the :data:`INCREMENTAL_WORKLOAD`
#: move-local candidate stream is scored twice — once through the bare staged
#: loop, once through an armed serial :class:`EvaluationPool` (retry policy,
#: per-candidate fault bookkeeping) that also writes a genuine checkpoint
#: document every ``checkpoint_every`` evaluations.  Both arms are pure and
#: fault-free, so the evaluations must be bit-identical; the record freezes
#: the relative overhead of the resilience layer.
#: ``max_overhead_percent`` was recalibrated (5% -> 12%) when the flat
#: schedule kernel landed: the per-candidate bookkeeping and checkpoint
#: writes cost the same absolute time as before, but the evaluations they
#: wrap got ~2x faster, so the *relative* overhead roughly doubled.
RESILIENCE_WORKLOAD = {
    "stream_length": 60,
    "checkpoint_every": 10,
    "repeats": 5,
    "max_overhead_percent": 12.0,
}

#: ``--check`` ceiling on the re-measured resilience overhead.  ``run``
#: refuses to freeze a record above ``max_overhead_percent``; the gate
#: ceiling is looser because the overhead is a small delta between two
#: same-host timings and scheduler noise can triple it on a busy machine,
#: while a genuinely heavy resilience layer (tens of percent) still fails.
RESILIENCE_GATE_OVERHEAD = 25.0

#: Service benchmark workload: the exploration service under a replayed load.
#: One generated system is submitted as two near-duplicate tenants (same
#: graph/architecture, different system names) whose jobs replay the same
#: ~200-candidate search stream over a **real** localhost HTTP socket; the
#: second tenant answers from the first's shared stage cache.  After the jobs,
#: a burst of status requests measures the HTTP front-end's requests/sec.
#: Both jobs are seeded pure Python, so the best cost and evaluation count are
#: frozen determinism anchors, and the cross-request hit rate must clear
#: ``min_hit_rate`` (the multi-tenant win the service exists for).
SERVICE_WORKLOAD = {
    "nodes": 20,
    "alternative_paths": 4,
    "system_seed": 7,
    "engine": "tabu",
    "seed": 3,
    "cycles": 25,
    "neighbors": 8,
    "status_requests": 200,
    "status_bursts": 3,
    "min_hit_rate": 0.5,
}

#: The service requests/sec gate is very tolerant: sequential
#: one-connection-per-request round-trips on a loopback interface swing by
#: 2x with kernel socket churn alone, so the gate only catches collapses,
#: not jitter.  The determinism anchors and the hit-rate floor do the
#: precise gating.
SERVICE_TOLERANCE = 1.5


def _capture_metadata(timestamp: str | None) -> dict:
    """Provenance stamped on (re-)measured records: interpreter, host, when.

    The timestamp is *passed in* (``--timestamp``), never read from the
    clock: regenerating a record with a pinned timestamp stays byte-for-byte
    reproducible, and an unstamped regeneration is honestly ``null`` instead
    of silently dating itself.
    """
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp": timestamp,
    }


def _capture_text(captured: dict | None) -> str:
    """One-cell rendering of a capture stamp (``-`` when absent)."""
    if not captured:
        return "-"
    when = captured.get("timestamp") or "undated"
    return f"py{captured.get('python', '?')} {when}"


def _calibrate(repeats: int = 3) -> float:
    """Wall-time of a fixed pure-Python workload, proxying host speed.

    Recorded next to the baseline timings so ``check`` can scale its limit on
    hosts slower than the one that produced the baseline, instead of flagging
    a phantom regression.
    """
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        total = 0
        for i in range(400_000):
            total += i * i
        best = min(best, time.perf_counter() - started)
    return best


def _measure(preset: str, repeats: int) -> dict:
    from repro.generator import LARGE_SCALE_PRESETS, large_scale_system
    from repro.scheduling import ScheduleMerger

    system = large_scale_system(preset)  # raises a named KeyError on bad presets
    config = LARGE_SCALE_PRESETS[preset]
    best = float("inf")
    for _ in range(repeats):
        merger = ScheduleMerger(
            system.graph, system.expanded_mapping, system.architecture
        )
        started = time.perf_counter()
        merger.merge()
        best = min(best, time.perf_counter() - started)
    record = {
        "nodes": config.nodes,
        "alternative_paths": config.alternative_paths,
        "seed": config.seed,
        "expanded_processes": len(system.graph),
        "merge_seconds": round(best, 4),
    }
    seed_time = SEED_MERGE_SECONDS.get(preset)
    if seed_time is not None:
        record["seed_merge_seconds"] = seed_time
        record["speedup_vs_seed"] = round(seed_time / best, 2)
    return record


def _measure_merge_flat() -> dict:
    """Merge the xlarge preset on the flat kernel, normalised to the frozen
    pre-flat grid timing (see :data:`MERGE_FLAT_WORKLOAD`).

    The speedup compares two different hosts (the pre-flat capture host and
    this one), so both timings are put on the same footing via the
    calibration workload — the same normalisation the merge-grid gate uses.
    Every repeat must produce the identical ``delta_max``; the frozen value
    doubles as the cross-host determinism anchor.
    """
    from repro.generator import LARGE_SCALE_PRESETS, large_scale_system
    from repro.scheduling import ScheduleMerger

    spec = MERGE_FLAT_WORKLOAD
    system = large_scale_system(spec["preset"])
    config = LARGE_SCALE_PRESETS[spec["preset"]]
    best = float("inf")
    delta_max = None
    for _ in range(spec["repeats"]):
        merger = ScheduleMerger(
            system.graph, system.expanded_mapping, system.architecture
        )
        started = time.perf_counter()
        result = merger.merge()
        best = min(best, time.perf_counter() - started)
        if delta_max is None:
            delta_max = result.delta_max
        elif result.delta_max != delta_max:
            raise SystemExit(
                "flat-kernel merge is not deterministic across repeats: "
                f"{result.delta_max!r} vs {delta_max!r}"
            )
    host_scale = max(
        1.0, _calibrate() / spec["pre_flat_calibration_seconds"]
    )
    speedup = spec["pre_flat_merge_seconds"] * host_scale / best
    return {
        **spec,
        "nodes": config.nodes,
        "alternative_paths": config.alternative_paths,
        "seed": config.seed,
        "expanded_processes": len(system.graph),
        "merge_seconds": round(best, 4),
        "delta_max": delta_max,
        "speedup_vs_pre_flat": round(speedup, 2),
        "min_speedup": MERGE_FLAT_MIN_SPEEDUP,
    }


def _measure_exploration() -> dict:
    """Time the exploration evaluator: cache + parallel pool vs naive serial.

    Builds the :data:`EXPLORATION_WORKLOAD` candidate stream (a neighbourhood
    of distinct design points replayed over several passes) and scores it
    twice — once re-running the schedule merger for every request (the naive
    baseline a search without the evaluator layer would pay) and once through
    the content-hash cache backed by the ``concurrent.futures`` pool.
    """
    import random

    from repro.exploration import (
        CachedEvaluator,
        EvaluationPool,
        ExplorationProblem,
        NeighborhoodSampler,
        default_worker_count,
    )
    from repro.generator import generate_system

    spec = EXPLORATION_WORKLOAD
    system = generate_system(spec["nodes"], spec["alternative_paths"], seed=spec["seed"])
    problem = ExplorationProblem.from_system(system)
    rng = random.Random(spec["seed"])
    initial = problem.initial_candidate()
    neighbors = NeighborhoodSampler(problem).sample(
        initial, rng, spec["distinct_candidates"]
    )
    batch = [candidate for _, candidate in neighbors]
    stream = []
    for _ in range(spec["passes"]):
        replay = list(batch)
        rng.shuffle(replay)
        stream.extend(replay)

    started = time.perf_counter()
    naive = CachedEvaluator(problem, cache=False, stage_cache=False).evaluate_many(
        stream
    )
    naive_seconds = time.perf_counter() - started

    workers = default_worker_count()
    with EvaluationPool(problem, workers=workers) as pool:
        evaluator = CachedEvaluator(problem, pool=pool)
        started = time.perf_counter()
        optimised = evaluator.evaluate_many(stream)
        optimised_seconds = time.perf_counter() - started
    assert naive == optimised, "cache/pool evaluation diverged from naive"

    return {
        **spec,
        "stream_length": len(stream),
        "workers": workers,
        "pool_mode": pool.mode,
        "naive_seconds": round(naive_seconds, 4),
        "optimised_seconds": round(optimised_seconds, 4),
        "speedup": round(naive_seconds / optimised_seconds, 2),
    }


def _measure_genetic() -> dict:
    """Time one seeded genetic (NSGA-style) search and record its front.

    Runs :data:`GENETIC_WORKLOAD` — architecture sizing enabled, front
    tracked over every evaluation — and returns the wall-time next to the
    final front's objective vectors.  The vectors are the determinism anchor:
    ``--check`` re-runs the workload and fails when they differ from the
    committed record, which would mean the engine's per-seed reproducibility
    broke.
    """
    from repro.exploration import (
        ArchitectureBounds,
        ExplorationConfig,
        ExplorationProblem,
        Explorer,
    )
    from repro.generator import generate_system

    spec = GENETIC_WORKLOAD
    system = generate_system(spec["nodes"], spec["alternative_paths"], seed=spec["seed"])
    problem = ExplorationProblem.from_system(system, bounds=ArchitectureBounds())
    config = ExplorationConfig(
        seed=spec["seed"],
        max_cycles=spec["generations"],
        population_size=spec["population"],
        track_front=True,
    )
    explorer = Explorer(problem, config=config)
    started = time.perf_counter()
    result = explorer.explore("genetic")
    genetic_seconds = time.perf_counter() - started

    return {
        **spec,
        "engine_seconds": round(genetic_seconds, 4),
        "evaluations": result.evaluations,
        "cache_hits": result.cache.hits,
        "best_delta_max": result.best.delta_max,
        "front_size": len(result.front),
        "front_vectors": [list(vector) for vector in result.front.vectors()],
        "tolerance": GENETIC_TOLERANCE,
    }


def _comm_mapping_problem(mapped: bool):
    from repro.data import load_fig1_example
    from repro.exploration import ExplorationProblem

    spec = COMM_MAPPING_WORKLOAD
    example = load_fig1_example(num_buses=spec["fig1_buses"])
    return ExplorationProblem(
        example.process_graph,
        example.mapping,
        example.architecture,
        name="fig1-two-bus",
        map_communications=mapped,
    )


def _measure_comm_mapping() -> dict:
    """Explore the two-bus Fig. 1 system with and without communication mapping.

    Runs :data:`COMM_MAPPING_WORKLOAD` twice under identical engine, seed and
    cycle budget.  The derived run accepts the least-index bus pick for every
    message (the pre-mapping behaviour: the second bus stays idle); the
    mapped run may pin messages to buses.  Records both best costs — frozen
    as the determinism/quality anchor ``--check`` replays — plus the realised
    bus distribution of the mapped winner.
    """
    from collections import Counter

    from repro.exploration import ExplorationConfig, Explorer

    spec = COMM_MAPPING_WORKLOAD
    config = ExplorationConfig(
        seed=spec["seed"],
        max_cycles=spec["cycles"],
        neighbors_per_cycle=spec["neighbors"],
    )

    derived = Explorer(_comm_mapping_problem(False), config=config).explore(
        spec["engine"]
    )

    mapped_problem = _comm_mapping_problem(True)
    started = time.perf_counter()
    mapped = Explorer(mapped_problem, config=config).explore(spec["engine"])
    mapped_seconds = time.perf_counter() - started

    bus_counts = Counter(
        mapped_problem.communications_for(mapped.best_candidate).values()
    )
    return {
        **spec,
        "engine_seconds": round(mapped_seconds, 4),
        "evaluations": mapped.evaluations,
        "derived_best_cost": derived.best.cost,
        "mapped_best_cost": mapped.best.cost,
        "mapped_pins": len(mapped.best_candidate.communication_assignment),
        "mapped_bus_distribution": dict(sorted(bus_counts.items())),
        "mapped_bus_imbalance": mapped.best.bus_imbalance,
        "tolerance": COMM_MAPPING_TOLERANCE,
    }


def _incremental_problem_and_stream():
    """Build the :data:`INCREMENTAL_WORKLOAD` problem and candidate stream."""
    import random

    from repro.exploration import ExplorationProblem
    from repro.generator import generate_system

    spec = INCREMENTAL_WORKLOAD
    system = generate_system(
        spec["nodes"],
        spec["alternative_paths"],
        seed=spec["seed"],
        programmable_processors=spec["programmable_processors"],
        buses=spec["buses"],
    )
    problem = ExplorationProblem.from_system(system, map_communications=True)
    rng = random.Random(spec["seed"])
    current = problem.initial_candidate()
    stream = [current]
    seen = {current.fingerprint}
    processes = problem.movable_processes
    processors = problem.processor_names
    while len(stream) < spec["stream_length"]:
        if rng.random() < 0.5:  # move one process's PE ...
            process = rng.choice(processes)
            targets = [pe for pe in processors if pe != current.pe_of(process)]
            candidate = current.reassigned(process, rng.choice(targets))
        else:  # ... or one message's bus pin
            active = problem.active_messages(current)
            if not active:
                continue
            message, src, dst = rng.choice(active)
            buses = problem.connecting_buses(current, src, dst)
            if len(buses) < 2:
                continue
            candidate = current.with_communication(message, rng.choice(buses))
        if candidate.fingerprint in seen:
            continue
        seen.add(candidate.fingerprint)
        stream.append(candidate)
        if rng.random() < spec["advance_probability"]:
            current = candidate
    return problem, stream


def _measure_incremental() -> dict:
    """Time full-pipeline vs staged (incremental) evaluation, interleaved.

    Each arm is measured ``repeats`` times and the best (minimum) time is
    kept, filtering scheduler/thermal noise out of the ratio.  Every repeat
    asserts the two arms produced bit-identical evaluations — the
    correctness half of the record; the frozen ``best_cost`` anchors
    determinism across hosts.
    """
    import time as _time

    from repro.exploration import StageCache, evaluate_candidate

    spec = INCREMENTAL_WORKLOAD
    problem, stream = _incremental_problem_and_stream()
    full_times, staged_times = [], []
    stage_stats = None
    for _ in range(spec["repeats"]):
        started = _time.perf_counter()
        full = [evaluate_candidate(problem, candidate) for candidate in stream]
        full_times.append(_time.perf_counter() - started)

        cache = StageCache()
        started = _time.perf_counter()
        staged = [
            evaluate_candidate(problem, candidate, stage_cache=cache)
            for candidate in stream
        ]
        staged_times.append(_time.perf_counter() - started)
        if full != staged:  # not an assert: must also hold under python -O
            raise SystemExit(
                "incremental evaluation diverged from the full pipeline"
            )
        stage_stats = cache.stats

    full_best = min(full_times)
    staged_best = min(staged_times)
    feasible_costs = [evaluation.cost for evaluation in staged if evaluation.feasible]
    if not feasible_costs:
        raise SystemExit(
            "INCREMENTAL_WORKLOAD produced no feasible candidates; retune it"
        )
    return {
        **spec,
        "distinct_candidates": len(stream),
        "full_seconds": round(full_best, 4),
        "incremental_seconds": round(staged_best, 4),
        "speedup": round(full_best / staged_best, 2),
        "best_cost": min(feasible_costs),
        "expansion_hits": stage_stats.expansion_hits,
        "expansion_misses": stage_stats.expansion_misses,
        "structure_hits": stage_stats.structure_hits,
        "structure_misses": stage_stats.structure_misses,
        "schedule_hits": stage_stats.schedule_hits,
        "schedule_misses": stage_stats.schedule_misses,
        "min_speedup": INCREMENTAL_MIN_SPEEDUP,
    }


def _measure_resilience() -> dict:
    """Time bare staged evaluation vs the armed resilient runtime, fault-free.

    Arm A scores the stream through a plain staged loop (the pre-resilience
    fast path).  Arm B scores the identical stream through a serial
    :class:`EvaluationPool` armed with a :class:`RetryPolicy` (attempt
    bookkeeping, quarantine accounting — everything but actual faults) and
    checkpoints a genuine versioned snapshot document every
    ``checkpoint_every`` evaluations.  Best-of-``repeats`` per arm; every
    repeat asserts bit-identical evaluations, and the headline is the
    relative overhead of arm B.
    """
    import random
    import tempfile
    from pathlib import Path as _Path

    from repro.exploration import (
        Checkpointer,
        EvaluationPool,
        RetryPolicy,
        StageCache,
        evaluate_candidate,
    )
    from repro.exploration.engines import SearchState, TrajectoryPoint
    from repro.exploration.resilience import snapshot_document

    spec = RESILIENCE_WORKLOAD
    problem, stream = _incremental_problem_and_stream()
    stream = stream[: spec["stream_length"]]
    rng_state = random.Random(0).getstate()

    bare_times, armed_times = [], []
    bare = armed = None
    with tempfile.TemporaryDirectory() as scratch:
        checkpoint_path = _Path(scratch) / "bench.ckpt.json"
        for repeat in range(spec["repeats"]):
            cache = StageCache()
            started = time.perf_counter()
            bare = [
                evaluate_candidate(problem, candidate, stage_cache=cache)
                for candidate in stream
            ]
            bare_times.append(time.perf_counter() - started)

            pool = EvaluationPool(
                problem, mode="serial", retry=RetryPolicy(backoff_base=0.0)
            )
            checkpointer = Checkpointer(
                checkpoint_path, every=spec["checkpoint_every"]
            )
            armed = []
            trajectory = []
            started = time.perf_counter()
            for index, candidate in enumerate(stream):
                armed.extend(pool.evaluate([candidate]))
                if (index + 1) % spec["checkpoint_every"] == 0:
                    best_index = min(
                        range(len(armed)), key=lambda i: armed[i].cost
                    )
                    cycle = (index + 1) // spec["checkpoint_every"]
                    trajectory.append(
                        TrajectoryPoint(
                            cycle=cycle,
                            move="bench",
                            cost=armed[index].cost,
                            best_cost=armed[best_index].cost,
                            accepted=index + 1,
                        )
                    )
                    checkpointer.save(
                        snapshot_document(
                            engine="bench-resilience",
                            seed=0,
                            problem_key=problem.content_key,
                            state=SearchState(
                                cycle=cycle,
                                evaluations=index + 1,
                                best_cost=armed[best_index].cost,
                            ),
                            rng_state=rng_state,
                            initial=(stream[0], armed[0]),
                            best=(stream[best_index], armed[best_index]),
                            trajectory=trajectory,
                            engine_state={"index": index},
                        )
                    )
            armed_times.append(time.perf_counter() - started)
            if armed != bare:  # not an assert: must also hold under python -O
                raise SystemExit(
                    "armed resilient evaluation diverged from the bare loop"
                )

    bare_best = min(bare_times)
    armed_best = min(armed_times)
    overhead = 100.0 * (armed_best - bare_best) / bare_best
    feasible_costs = [evaluation.cost for evaluation in bare if evaluation.feasible]
    if not feasible_costs:
        raise SystemExit(
            "RESILIENCE_WORKLOAD produced no feasible candidates; retune it"
        )
    return {
        **spec,
        "bare_seconds": round(bare_best, 4),
        "armed_seconds": round(armed_best, 4),
        "overhead_percent": round(overhead, 2),
        "checkpoint_saves": spec["stream_length"] // spec["checkpoint_every"],
        "best_cost": min(feasible_costs),
        "gate_overhead_percent": RESILIENCE_GATE_OVERHEAD,
    }


def _measure_service() -> dict:
    """Replay a candidate stream through the exploration service over HTTP.

    Starts the asyncio job server in-process on an ephemeral port and drives
    it exactly like an external client would: submit tenant A's job, poll it
    to completion, fetch the result; repeat for tenant B — the same system
    under a different name — which must answer partly from tenant A's shared
    stage cache.  A burst of status requests then measures the HTTP
    front-end's requests/sec.  Both jobs are seeded pure Python, so the best
    cost and the evaluation count are frozen determinism anchors; the
    cross-request hit rate must clear ``min_hit_rate``.
    """
    from repro.generator import generate_system
    from repro.io import system_to_dict
    from repro.service import ServiceClient, start_in_thread

    spec = SERVICE_WORKLOAD
    system = generate_system(
        spec["nodes"], spec["alternative_paths"], seed=spec["system_seed"]
    )

    def _tenant_payload(name):
        return system_to_dict(
            system.process_graph, system.architecture, system.mapping, name
        )

    def _run_tenant(client, name):
        request = {
            "system": _tenant_payload(name),
            "engine": spec["engine"],
            "seed": spec["seed"],
            "cycles": spec["cycles"],
            "neighbors": spec["neighbors"],
        }
        started = time.perf_counter()
        submitted = client.submit(request)
        status = client.wait(submitted["job"], timeout=600, interval=0.02)
        document = client.result(submitted["job"])
        return time.perf_counter() - started, status, document

    with start_in_thread(job_workers=2) as running:
        client = ServiceClient(running.url, timeout=120.0)
        a_seconds, status_a, document_a = _run_tenant(client, "tenant-a")
        b_seconds, status_b, document_b = _run_tenant(client, "tenant-b")
        burst_times = []
        for _ in range(spec["status_bursts"]):  # best-of: socket churn is noisy
            started = time.perf_counter()
            for _ in range(spec["status_requests"]):
                client.status(status_a["job"])
            burst_times.append(time.perf_counter() - started)
        status_seconds = min(burst_times)
        cache = client.cache_stats()

    best_a = document_a["results"][0]["best"]["cost"]
    best_b = document_b["results"][0]["best"]["cost"]
    if best_a != best_b:  # the system name must never steer the search
        raise SystemExit(
            "refusing to freeze a service baseline whose near-duplicate "
            f"tenants disagree on the best cost: {best_a!r} vs {best_b!r}"
        )
    shared = status_b["shared_cache"]
    queries = shared["stage_hits"] + shared["stage_misses"]
    hit_rate = shared["stage_hits"] / queries if queries else 0.0
    if shared["entries_at_start"] == 0 or hit_rate < spec["min_hit_rate"]:
        raise SystemExit(
            "refusing to freeze a service baseline without cross-request "
            f"reuse: tenant B started with {shared['entries_at_start']} "
            f"shared entries and hit {hit_rate:.0%} (< "
            f"{spec['min_hit_rate']:.0%}); retune SERVICE_WORKLOAD"
        )
    return {
        **spec,
        "evaluations": document_a["results"][0]["evaluations"],
        "best_cost": best_a,
        "cold_job_seconds": round(a_seconds, 4),
        "warm_job_seconds": round(b_seconds, 4),
        "cross_request_hit_rate": round(hit_rate, 4),
        "entries_at_start": shared["entries_at_start"],
        "stage_hits": shared["stage_hits"],
        "stage_misses": shared["stage_misses"],
        "lru_evictions": cache["totals"]["lru_evictions"],
        "status_requests_per_second": round(
            spec["status_requests"] / status_seconds, 1
        ),
        "tolerance": SERVICE_TOLERANCE,
    }


def _summary_rows(payload: dict) -> list:
    """``(record, headline, seconds, captured)`` per committed benchmark record.

    The ``captured`` cell renders each record's capture stamp (interpreter,
    caller-supplied timestamp); records measured before stamping existed —
    and the preset grid, which is only rewritten wholesale — fall back to the
    payload-level stamp, or ``-``.
    """
    fallback = payload.get("captured")
    rows = []
    for preset, record in payload["workloads"].items():
        speedup = record.get("speedup_vs_seed")
        headline = f"merge x{speedup} vs seed" if speedup else "merge"
        rows.append([
            preset, headline, record["merge_seconds"],
            _capture_text(record.get("captured") or fallback),
        ])
    exploration = payload["exploration"]
    rows.append([
        "exploration",
        f"cache+pool x{exploration['speedup']} vs naive",
        exploration["optimised_seconds"],
        _capture_text(exploration.get("captured") or fallback),
    ])
    genetic = payload["genetic"]
    rows.append([
        "genetic",
        f"front of {genetic['front_size']} frozen (determinism)",
        genetic["engine_seconds"],
        _capture_text(genetic.get("captured") or fallback),
    ])
    comm = payload["comm_mapping"]
    rows.append([
        "comm_mapping",
        f"mapped {comm['mapped_best_cost']:g} < derived {comm['derived_best_cost']:g}",
        comm["engine_seconds"],
        _capture_text(comm.get("captured") or fallback),
    ])
    incremental = payload["incremental"]
    rows.append([
        "incremental",
        f"staged x{incremental['speedup']} vs full pipeline",
        incremental["incremental_seconds"],
        _capture_text(incremental.get("captured") or fallback),
    ])
    merge_flat = payload.get("merge_flat")
    if merge_flat:  # baselines may predate the flat-kernel record
        rows.append([
            "merge_flat",
            f"flat kernel x{merge_flat['speedup_vs_pre_flat']} vs pre-flat grid",
            merge_flat["merge_seconds"],
            _capture_text(merge_flat.get("captured") or fallback),
        ])
    resilience = payload.get("resilience")
    if resilience:  # baselines may predate the resilience record
        rows.append([
            "resilience",
            f"armed runtime {resilience['overhead_percent']:+g}% fault-free",
            resilience["armed_seconds"],
            _capture_text(resilience.get("captured") or fallback),
        ])
    service = payload.get("service")
    if service:  # baselines may predate the service record
        rows.append([
            "service",
            f"2 tenants over HTTP, warm hit rate "
            f"{service['cross_request_hit_rate']:.0%}",
            service["warm_job_seconds"],
            _capture_text(service.get("captured") or fallback),
        ])
    return rows


def print_summary(payload: dict) -> None:
    """Print the one-line-per-record trajectory table (for CI logs)."""
    rows = _summary_rows(payload)
    width = max(len(str(row[0])) for row in rows)
    head = max(len(str(row[1])) for row in rows)
    print("benchmark trajectory:")
    for name, headline, seconds, captured in rows:
        print(f"  {str(name):<{width}}  {str(headline):<{head}}  "
              f"{seconds:.4f}s  {captured}")


def run(output: Path, presets, repeats: int, timestamp: str | None = None) -> dict:
    workloads = {}
    for preset in presets:
        workloads[preset] = _measure(preset, repeats)
        rec = workloads[preset]
        speedup = rec.get("speedup_vs_seed")
        extra = f"  ({speedup}x vs seed)" if speedup else ""
        print(
            f"{preset:>8}: {rec['expanded_processes']:>4} processes, "
            f"merge {rec['merge_seconds']:.4f}s{extra}"
        )
    exploration = _measure_exploration()
    print(
        f"explore : {exploration['stream_length']} candidate requests "
        f"({exploration['distinct_candidates']} distinct), naive "
        f"{exploration['naive_seconds']:.4f}s vs cache+pool "
        f"{exploration['optimised_seconds']:.4f}s "
        f"({exploration['speedup']}x, {exploration['workers']} worker(s))"
    )
    genetic = _measure_genetic()
    print(
        f"genetic : {genetic['generations']} generations x "
        f"{genetic['population']} population in "
        f"{genetic['engine_seconds']:.4f}s "
        f"({genetic['evaluations']} evaluations, front of "
        f"{genetic['front_size']})"
    )
    comm_mapping = _measure_comm_mapping()
    if not comm_mapping["mapped_best_cost"] < comm_mapping["derived_best_cost"]:
        # --check hard-fails on this invariant; refusing to freeze a baseline
        # that violates it beats committing a permanently red gate.
        raise SystemExit(
            "refusing to freeze a comm_mapping baseline whose mapped run does "
            f"not beat the derived run: mapped "
            f"{comm_mapping['mapped_best_cost']!r} vs derived "
            f"{comm_mapping['derived_best_cost']!r}; retune "
            "COMM_MAPPING_WORKLOAD before regenerating"
        )
    print(
        f"comm-map: two-bus Fig. 1, {comm_mapping['engine']} x "
        f"{comm_mapping['cycles']} cycles: derived "
        f"{comm_mapping['derived_best_cost']:g} vs mapped "
        f"{comm_mapping['mapped_best_cost']:g} "
        f"({comm_mapping['mapped_pins']} pins, buses "
        f"{comm_mapping['mapped_bus_distribution']}) in "
        f"{comm_mapping['engine_seconds']:.4f}s"
    )
    incremental = _measure_incremental()
    if incremental["speedup"] < 1.6:
        # --check gates a speedup floor; refusing to freeze a baseline that
        # does not clear it with margin beats committing a red gate.  (The
        # pre-flat-kernel headline was 2x; the flat kernel halved the
        # merge-dominated full-pipeline arm, so ~1.7x is now the honest
        # same-host ratio.)
        raise SystemExit(
            "refusing to freeze an incremental baseline below 1.6x: "
            f"measured {incremental['speedup']}x; rerun on a quiet "
            "host or retune INCREMENTAL_WORKLOAD"
        )
    print(
        f"increm. : {incremental['distinct_candidates']} move-local candidates, "
        f"full {incremental['full_seconds']:.4f}s vs staged "
        f"{incremental['incremental_seconds']:.4f}s "
        f"({incremental['speedup']}x; structure hits "
        f"{incremental['structure_hits']}/"
        f"{incremental['structure_hits'] + incremental['structure_misses']}, "
        f"schedule hits {incremental['schedule_hits']}/"
        f"{incremental['schedule_hits'] + incremental['schedule_misses']})"
    )
    merge_flat = _measure_merge_flat()
    if merge_flat["speedup_vs_pre_flat"] < merge_flat["min_speedup"]:
        # --check gates a speedup floor; refusing to freeze a baseline that
        # does not meet it beats committing a permanently red gate.
        raise SystemExit(
            "refusing to freeze a merge_flat baseline below the "
            f"{merge_flat['min_speedup']}x floor: measured "
            f"{merge_flat['speedup_vs_pre_flat']}x; rerun on a quiet host"
        )
    print(
        f"mergeflt: {merge_flat['expanded_processes']} processes, flat "
        f"{merge_flat['merge_seconds']:.4f}s vs frozen pre-flat "
        f"{merge_flat['pre_flat_merge_seconds']:.4f}s "
        f"({merge_flat['speedup_vs_pre_flat']}x host-normalised)"
    )
    resilience = _measure_resilience()
    if resilience["overhead_percent"] > resilience["max_overhead_percent"]:
        raise SystemExit(
            "refusing to freeze a resilience baseline above the "
            f"{resilience['max_overhead_percent']}% overhead ceiling: measured "
            f"{resilience['overhead_percent']}%; rerun on a quiet host or "
            "retune RESILIENCE_WORKLOAD"
        )
    print(
        f"resil.  : {resilience['stream_length']} fault-free candidates, bare "
        f"{resilience['bare_seconds']:.4f}s vs armed "
        f"{resilience['armed_seconds']:.4f}s "
        f"({resilience['overhead_percent']:+g}%, "
        f"{resilience['checkpoint_saves']} checkpoint saves)"
    )
    service = _measure_service()  # refuses to freeze without cross-tenant reuse
    print(
        f"service : 2 tenants x {service['evaluations']} evaluations over "
        f"HTTP, cold {service['cold_job_seconds']:.4f}s vs warm "
        f"{service['warm_job_seconds']:.4f}s (hit rate "
        f"{service['cross_request_hit_rate']:.0%}, "
        f"{service['status_requests_per_second']:g} status req/s)"
    )
    payload = {
        "description": (
            "ScheduleMerger.merge wall-time on the LARGE_SCALE_PRESETS random "
            "systems; seed_merge_seconds is the frozen pre-optimisation "
            "baseline. 'exploration' times the design-space explorer's "
            "evaluator layer (content-hash cache + parallel pool) against "
            "naive sequential re-evaluation on a revisit-heavy candidate "
            "stream. 'genetic' times one seeded NSGA-style search with "
            "architecture sizing and freezes its Pareto front as a "
            "determinism anchor. 'comm_mapping' explores the two-bus Fig. 1 "
            "system with and without communication-to-bus mapping under an "
            "identical engine/seed/cycle budget and freezes both best costs "
            "(the mapped run must beat the derived run). 'incremental' "
            "scores a move-local candidate stream through the staged "
            "sub-fingerprint caches versus the full pipeline per candidate "
            "(bit-identical evaluations, frozen best cost, >= 1.6x at "
            "capture). 'merge_flat' re-merges the xlarge grid preset on the "
            "packed-column flat schedule kernel against the frozen pre-flat "
            "grid timing (host-normalised >= 1.7x, delta_max frozen as the "
            "determinism anchor). 'resilience' scores a fault-free prefix of the same "
            "stream through the armed resilient runtime (retry policy + "
            "periodic checkpoint writes) versus the bare staged loop and "
            "freezes the relative overhead (< 5% at capture, bit-identical "
            "evaluations). 'service' replays the same system as two "
            "near-duplicate tenants through the exploration service over a "
            "real localhost HTTP socket and freezes the best cost plus the "
            "cross-request stage-cache hit rate floor (the second tenant "
            "must answer partly from the first's shared cache). Regenerate "
            "with scripts/run_benchmarks.py "
            "(--record NAME remeasures one record into the committed "
            "baseline); check with --check."
        ),
        "reference": DEFAULT_REFERENCE,
        "tolerance": DEFAULT_TOLERANCE,
        "captured": _capture_metadata(timestamp),
        "calibration_seconds": round(_calibrate(), 4),
        "workloads": workloads,
        "exploration": exploration,
        "genetic": genetic,
        "comm_mapping": comm_mapping,
        "incremental": incremental,
        "merge_flat": merge_flat,
        "resilience": resilience,
        "service": service,
    }
    output.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {output}")
    print_summary(payload)
    return payload


def check(
    baseline_path: Path,
    reference: str | None = None,
    tolerance: float | None = None,
    repeats: int = 3,
) -> str | None:
    """Compare the reference workload against the committed baseline.

    Returns None when within tolerance, an explanatory message otherwise.
    """
    baseline = json.loads(baseline_path.read_text())
    print_summary(baseline)  # the committed trajectory, with capture stamps
    reference = reference or baseline.get("reference", DEFAULT_REFERENCE)
    tolerance = tolerance if tolerance is not None else baseline.get(
        "tolerance", DEFAULT_TOLERANCE
    )
    committed = baseline["workloads"][reference]["merge_seconds"]
    measured = _measure(reference, repeats)["merge_seconds"]
    # Normalise for host speed: a machine 2x slower than the baseline host is
    # allowed 2x the time.  Faster hosts keep the unscaled limit (scale >= 1)
    # so a regression cannot hide behind fast hardware.
    scale = 1.0
    baseline_calibration = baseline.get("calibration_seconds")
    if baseline_calibration:
        scale = max(1.0, _calibrate() / baseline_calibration)
    limit = committed * (1.0 + tolerance) * scale
    verdict = "ok" if measured <= limit else "REGRESSION"
    scale_text = f", host scale x{scale:.2f}" if scale > 1.0 else ""
    print(
        f"{reference}: measured {measured:.4f}s vs baseline {committed:.4f}s "
        f"(limit {limit:.4f}s at +{tolerance:.0%}{scale_text}) -> {verdict}"
    )
    if measured > limit:
        return (
            f"merge time on {reference!r} regressed: {measured:.4f}s > "
            f"{committed:.4f}s * {1.0 + tolerance:.2f} * host scale {scale:.2f}"
        )
    failure = _check_genetic(baseline, scale)
    if failure:
        return failure
    failure = _check_comm_mapping(baseline, scale)
    if failure:
        return failure
    failure = _check_incremental(baseline)
    if failure:
        return failure
    failure = _check_merge_flat(baseline)
    if failure:
        return failure
    failure = _check_resilience(baseline)
    if failure:
        return failure
    return _check_service(baseline, scale)


def _check_genetic(baseline: dict, scale: float) -> str | None:
    """Gate the genetic benchmark: front determinism first, then timing.

    The committed front vectors must reproduce bit-exactly (the engine is
    seeded pure Python — any drift is a real reproducibility regression, not
    noise), and the wall-time must stay within the genetic tolerance scaled
    by the same host calibration as the merge gate.
    """
    committed = baseline.get("genetic")
    if not committed:  # baseline predates the genetic benchmark
        return None
    measured = _measure_genetic()
    if measured["front_vectors"] != committed["front_vectors"]:
        print("genetic : front vectors diverged from baseline -> REGRESSION")
        return (
            "genetic front is no longer deterministic per seed: measured "
            f"{measured['front_vectors']} vs committed "
            f"{committed['front_vectors']}"
        )
    tolerance = committed.get("tolerance", GENETIC_TOLERANCE)
    limit = committed["engine_seconds"] * (1.0 + tolerance) * scale
    verdict = "ok" if measured["engine_seconds"] <= limit else "REGRESSION"
    print(
        f"genetic : measured {measured['engine_seconds']:.4f}s vs baseline "
        f"{committed['engine_seconds']:.4f}s (limit {limit:.4f}s at "
        f"+{tolerance:.0%}), front of {measured['front_size']} reproduced "
        f"-> {verdict}"
    )
    if measured["engine_seconds"] > limit:
        return (
            f"genetic engine time regressed: {measured['engine_seconds']:.4f}s "
            f"> {committed['engine_seconds']:.4f}s * {1.0 + tolerance:.2f} "
            f"* host scale {scale:.2f}"
        )
    return None


def _check_comm_mapping(baseline: dict, scale: float) -> str | None:
    """Gate the communication-mapping benchmark: determinism + quality first.

    The frozen best costs of both the derived and the mapped run must
    reproduce bit-exactly (seeded pure Python), the mapped run must still
    strictly beat the derived run on the same engine/seed/cycle budget, and
    the wall-time must stay within tolerance, host-calibrated like the other
    gates.
    """
    committed = baseline.get("comm_mapping")
    if not committed:  # baseline predates the communication-mapping benchmark
        return None
    measured = _measure_comm_mapping()
    for key in ("derived_best_cost", "mapped_best_cost"):
        if measured[key] != committed[key]:
            print(f"comm-map: {key} diverged from baseline -> REGRESSION")
            return (
                f"communication-mapping search is no longer deterministic per "
                f"seed: {key} measured {measured[key]!r} vs committed "
                f"{committed[key]!r}"
            )
    if not measured["mapped_best_cost"] < measured["derived_best_cost"]:
        print("comm-map: mapped run no longer beats derived run -> REGRESSION")
        return (
            "exploring communication mapping no longer beats the derived "
            f"assignment: mapped {measured['mapped_best_cost']!r} vs derived "
            f"{measured['derived_best_cost']!r}"
        )
    tolerance = committed.get("tolerance", COMM_MAPPING_TOLERANCE)
    limit = committed["engine_seconds"] * (1.0 + tolerance) * scale
    verdict = "ok" if measured["engine_seconds"] <= limit else "REGRESSION"
    print(
        f"comm-map: derived {measured['derived_best_cost']:g} vs mapped "
        f"{measured['mapped_best_cost']:g} reproduced; "
        f"{measured['engine_seconds']:.4f}s vs baseline "
        f"{committed['engine_seconds']:.4f}s (limit {limit:.4f}s at "
        f"+{tolerance:.0%}) -> {verdict}"
    )
    if measured["engine_seconds"] > limit:
        return (
            f"communication-mapping search time regressed: "
            f"{measured['engine_seconds']:.4f}s > "
            f"{committed['engine_seconds']:.4f}s * {1.0 + tolerance:.2f} "
            f"* host scale {scale:.2f}"
        )
    return None


def _check_incremental(baseline: dict) -> str | None:
    """Gate the incremental-evaluation benchmark: determinism, then speedup.

    The measurement itself asserts that staged and full-pipeline evaluations
    are bit-identical per candidate; this gate additionally requires the
    frozen best cost to reproduce exactly (seeded pure Python) and the
    re-measured speedup to stay above the committed floor.  The speedup is a
    same-host ratio, so no calibration scaling applies.
    """
    committed = baseline.get("incremental")
    if not committed:  # baseline predates the incremental benchmark
        return None
    measured = _measure_incremental()
    if measured["best_cost"] != committed["best_cost"]:
        print("increm. : best cost diverged from baseline -> REGRESSION")
        return (
            "incremental evaluation is no longer deterministic per seed: "
            f"best cost measured {measured['best_cost']!r} vs committed "
            f"{committed['best_cost']!r}"
        )
    floor = committed.get("min_speedup", INCREMENTAL_MIN_SPEEDUP)
    verdict = "ok" if measured["speedup"] >= floor else "REGRESSION"
    print(
        f"increm. : staged {measured['incremental_seconds']:.4f}s vs full "
        f"{measured['full_seconds']:.4f}s = {measured['speedup']}x "
        f"(floor {floor}x, committed {committed['speedup']}x) -> {verdict}"
    )
    if measured["speedup"] < floor:
        return (
            f"incremental evaluator speedup regressed: {measured['speedup']}x "
            f"< the committed floor {floor}x (baseline {committed['speedup']}x)"
        )
    return None


def _check_merge_flat(baseline: dict) -> str | None:
    """Gate the flat-kernel benchmark: determinism, then speedup floor.

    The frozen ``delta_max`` must reproduce bit-exactly (the flat kernel is
    a pure representation change — any drift is a semantics regression, not
    noise), and the host-normalised speedup over the frozen pre-flat grid
    timing must stay above the committed floor.  The measurement already
    embeds the host calibration, so no extra scaling applies here.
    """
    committed = baseline.get("merge_flat")
    if not committed:  # baseline predates the flat-kernel benchmark
        return None
    measured = _measure_merge_flat()
    if measured["delta_max"] != committed["delta_max"]:
        print("mergeflt: delta_max diverged from baseline -> REGRESSION")
        return (
            "flat-kernel merge is no longer deterministic: delta_max "
            f"measured {measured['delta_max']!r} vs committed "
            f"{committed['delta_max']!r}"
        )
    floor = committed.get("min_speedup", MERGE_FLAT_MIN_SPEEDUP)
    verdict = "ok" if measured["speedup_vs_pre_flat"] >= floor else "REGRESSION"
    print(
        f"mergeflt: flat {measured['merge_seconds']:.4f}s vs frozen pre-flat "
        f"{committed['pre_flat_merge_seconds']:.4f}s = "
        f"{measured['speedup_vs_pre_flat']}x host-normalised (floor {floor}x, "
        f"committed {committed['speedup_vs_pre_flat']}x) -> {verdict}"
    )
    if measured["speedup_vs_pre_flat"] < floor:
        return (
            "flat-kernel merge speedup regressed: "
            f"{measured['speedup_vs_pre_flat']}x < the committed floor "
            f"{floor}x (baseline {committed['speedup_vs_pre_flat']}x)"
        )
    return None


def _check_resilience(baseline: dict) -> str | None:
    """Gate the resilience benchmark: determinism, then fault-free overhead.

    The measurement itself asserts that armed and bare evaluations are
    bit-identical; this gate additionally requires the frozen best cost to
    reproduce exactly (seeded pure Python) and the re-measured overhead to
    stay under the committed ceiling.  The overhead is a same-host ratio, so
    no calibration scaling applies — but the gate ceiling is looser than the
    freeze ceiling because the delta between the two arms is small enough
    for scheduler noise to double it.
    """
    committed = baseline.get("resilience")
    if not committed:  # baseline predates the resilience benchmark
        return None
    measured = _measure_resilience()
    if measured["best_cost"] != committed["best_cost"]:
        print("resil.  : best cost diverged from baseline -> REGRESSION")
        return (
            "resilient evaluation is no longer deterministic per seed: best "
            f"cost measured {measured['best_cost']!r} vs committed "
            f"{committed['best_cost']!r}"
        )
    ceiling = committed.get("gate_overhead_percent", RESILIENCE_GATE_OVERHEAD)
    verdict = "ok" if measured["overhead_percent"] <= ceiling else "REGRESSION"
    print(
        f"resil.  : armed {measured['armed_seconds']:.4f}s vs bare "
        f"{measured['bare_seconds']:.4f}s = {measured['overhead_percent']:+g}% "
        f"(ceiling {ceiling}%, committed {committed['overhead_percent']:+g}%) "
        f"-> {verdict}"
    )
    if measured["overhead_percent"] > ceiling:
        return (
            "resilience layer overhead regressed: "
            f"{measured['overhead_percent']:+g}% > the committed ceiling "
            f"{ceiling}% (baseline {committed['overhead_percent']:+g}%)"
        )
    return None


def _check_service(baseline: dict, scale: float) -> str | None:
    """Gate the service benchmark: determinism, then reuse, then throughput.

    The frozen best cost and evaluation count must reproduce bit-exactly
    (the served jobs are the same seeded pure-Python search as the one-shot
    CLI — drift here means the service layer changed results), the second
    tenant's cross-request hit rate must clear the committed floor, and the
    HTTP front-end's status requests/sec must stay within tolerance of the
    committed throughput, host-calibrated like the timing gates.
    """
    committed = baseline.get("service")
    if not committed:  # baseline predates the service benchmark
        return None
    measured = _measure_service()
    for key in ("best_cost", "evaluations"):
        if measured[key] != committed[key]:
            print(f"service : {key} diverged from baseline -> REGRESSION")
            return (
                "served exploration is no longer deterministic per seed: "
                f"{key} measured {measured[key]!r} vs committed "
                f"{committed[key]!r}"
            )
    floor = committed.get("min_hit_rate", SERVICE_WORKLOAD["min_hit_rate"])
    if measured["cross_request_hit_rate"] < floor:
        print("service : cross-request reuse below floor -> REGRESSION")
        return (
            "cross-request stage-cache reuse regressed: hit rate "
            f"{measured['cross_request_hit_rate']:.0%} < the committed floor "
            f"{floor:.0%} (baseline {committed['cross_request_hit_rate']:.0%})"
        )
    tolerance = committed.get("tolerance", SERVICE_TOLERANCE)
    limit = committed["status_requests_per_second"] / ((1.0 + tolerance) * scale)
    verdict = (
        "ok" if measured["status_requests_per_second"] >= limit else "REGRESSION"
    )
    print(
        f"service : best cost reproduced, hit rate "
        f"{measured['cross_request_hit_rate']:.0%}; "
        f"{measured['status_requests_per_second']:g} status req/s vs baseline "
        f"{committed['status_requests_per_second']:g} (floor {limit:.1f} at "
        f"-{tolerance:.0%}) -> {verdict}"
    )
    if measured["status_requests_per_second"] < limit:
        return (
            "service request throughput regressed: "
            f"{measured['status_requests_per_second']:g} req/s < "
            f"{committed['status_requests_per_second']:g} / "
            f"{1.0 + tolerance:.2f} / host scale {scale:.2f}"
        )
    return None


#: Records ``--record`` can re-measure individually into an existing baseline.
RECORD_MEASURERS = {
    "exploration": lambda: _measure_exploration(),
    "genetic": lambda: _measure_genetic(),
    "comm_mapping": lambda: _measure_comm_mapping(),
    "incremental": lambda: _measure_incremental(),
    "merge_flat": lambda: _measure_merge_flat(),
    "resilience": lambda: _measure_resilience(),
    "service": lambda: _measure_service(),
}


def update_records(
    baseline_path: Path, names: list, timestamp: str | None = None
) -> int:
    """Re-measure only the named records and merge them into the baseline.

    Avoids re-freezing every timing (and every determinism anchor) just to
    add or refresh one record — the rest of the committed trajectory stays
    byte-identical.  Each re-measured record is stamped with capture
    metadata (interpreter, host platform, the caller-supplied ``timestamp``).
    """
    payload = json.loads(baseline_path.read_text())
    for name in names:
        measurer = RECORD_MEASURERS.get(name)
        if measurer is None:
            print(
                f"error: unknown record {name!r}; choose from "
                f"{', '.join(sorted(RECORD_MEASURERS))}",
                file=sys.stderr,
            )
            return 2
        record = measurer()
        record["captured"] = _capture_metadata(timestamp)
        payload[name] = record
        print(f"re-measured {name!r} ({_capture_text(record['captured'])})")
    baseline_path.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {baseline_path}")
    print_summary(payload)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed BENCH_core.json instead of rewriting it",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--presets",
        default="small,medium,large,xlarge",
        help="comma-separated preset names (see repro.generator.LARGE_SCALE_PRESETS)",
    )
    parser.add_argument(
        "--reference", default=None, help="preset used by --check (default: from baseline)"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional regression for --check (default: from baseline, 0.25)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repetitions")
    parser.add_argument(
        "--timestamp",
        default=None,
        metavar="ISO8601",
        help="capture timestamp stamped on (re-)measured records; passed in "
        "explicitly (e.g. from CI) so regeneration never reads the clock",
    )
    parser.add_argument(
        "--record",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "re-measure only this record (repeatable; one of "
            f"{', '.join(sorted(RECORD_MEASURERS))}) and merge it into the "
            "committed baseline instead of rewriting everything"
        ),
    )
    args = parser.parse_args(argv)

    try:
        if args.record:
            return update_records(args.baseline, args.record, args.timestamp)
        if args.check:
            failure = check(args.baseline, args.reference, args.tolerance, args.repeats)
            if failure:
                print(f"FAIL: {failure}", file=sys.stderr)
                return 1
            return 0
        run(
            args.output,
            [p for p in args.presets.split(",") if p],
            args.repeats,
            args.timestamp,
        )
        return 0
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
