"""Offline markdown link checker for the repository's documentation.

Scans every top-level ``*.md`` file and everything under ``docs/`` for
markdown links (``[text](target)``) and reference-style definitions
(``[label]: target``) and verifies that every *relative* target resolves to
an existing file or directory, relative to the file containing the link.
External links (``http://``, ``https://``, ``mailto:``) are recorded but not
fetched — the check runs offline, in CI and in tier-1 tests
(``tests/test_docs.py``), so it must never depend on the network.

Usage::

    python scripts/check_links.py            # exit 1 listing broken links
    python scripts/check_links.py --verbose  # also list every checked link
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, NamedTuple, Tuple

ROOT = Path(__file__).resolve().parent.parent

#: Inline links: [text](target).  Images ![alt](target) match too (the
#: leading ! simply precedes the match).  Targets containing spaces are
#: allowed when angle-bracketed: [text](<a b.md>) — the first alternative
#: captures the bracketed form, the second the plain form.
_INLINE_LINK = re.compile(r"\[[^\]]*\]\((?:<([^>]+)>|([^)<>\s]+))\)")
#: Reference definitions at line start: [label]: target
_REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
#: Fenced code blocks are stripped before scanning: their bracketed text
#: (e.g. Python indexing) is code, not links.
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
_INLINE_CODE = re.compile(r"`[^`\n]*`")

_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

#: Retrieved reference material, not curated documentation: these files quote
#: external sources verbatim (including figure links into the original PDFs)
#: and are not expected to resolve locally.
_EXCLUDED = {"PAPERS.md", "SNIPPETS.md"}


class Link(NamedTuple):
    """One discovered link: the file it lives in and its raw target."""

    source: Path
    target: str


def documentation_files(root: Path = ROOT) -> List[Path]:
    """The markdown set the check covers: root-level *.md plus docs/**."""
    files = sorted(root.glob("*.md"))
    files.extend(sorted((root / "docs").rglob("*.md")))
    return [
        path for path in files if path.is_file() and path.name not in _EXCLUDED
    ]


def links_in(path: Path) -> List[Link]:
    """Extract every link target from one markdown file."""
    text = path.read_text(encoding="utf-8")
    text = _CODE_FENCE.sub("", text)
    text = _INLINE_CODE.sub("", text)
    targets = [
        bracketed or plain for bracketed, plain in _INLINE_LINK.findall(text)
    ]
    targets.extend(_REFERENCE_DEF.findall(text))
    return [Link(path, target) for target in targets]


def classify(link: Link) -> Tuple[str, str]:
    """Return (status, detail) for one link: ok / external / anchor / broken."""
    target = link.target
    if target.startswith(_EXTERNAL_SCHEMES):
        return "external", target
    path_part, _, _anchor = target.partition("#")
    if not path_part:  # pure in-page anchor like #section
        return "anchor", target
    resolved = (link.source.parent / path_part).resolve()
    if resolved.exists():
        return "ok", str(resolved.relative_to(ROOT))
    return "broken", path_part


def broken_links(root: Path = ROOT) -> List[Link]:
    """Every relative link in the documentation set that does not resolve."""
    return [
        link
        for path in documentation_files(root)
        for link in links_in(path)
        if classify(link)[0] == "broken"
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--verbose", action="store_true", help="list every checked link"
    )
    args = parser.parse_args(argv)

    files = documentation_files()
    checked = 0
    failures: List[Link] = []
    for path in files:
        for link in links_in(path):
            status, detail = classify(link)
            checked += 1
            if status == "broken":
                failures.append(link)
            if args.verbose or status == "broken":
                print(
                    f"{status:>8}  {path.relative_to(ROOT)} -> {link.target}"
                    + (f"  ({detail})" if status == "ok" else "")
                )
    print(
        f"checked {checked} links in {len(files)} markdown files: "
        f"{len(failures)} broken"
    )
    if failures:
        for link in failures:
            print(
                f"BROKEN: {link.source.relative_to(ROOT)} -> {link.target}",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
