#!/usr/bin/env python3
"""Quickstart: model a small conditional application, schedule it, inspect the table.

The example models a tiny control application: a sensor reading is processed,
a decision process computes the condition ``urgent``; the urgent branch runs a
short filter on a hardware accelerator, the normal branch runs a longer filter
in software, and both branches feed the actuator command.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Condition,
    CPGBuilder,
    Mapping,
    RuntimeSimulator,
    ScheduleMerger,
    simple_architecture,
)
from repro.analysis import format_schedule_table, render_gantt
from repro.graph import expand_communications


def build_application():
    """A five-process conditional application with one condition."""
    urgent = Condition("urgent")
    builder = CPGBuilder("quickstart")
    builder.process("sample", 2.0)
    builder.process("classify", 3.0)          # computes the condition `urgent`
    builder.process("fast_filter", 4.0)       # guard: urgent
    builder.process("slow_filter", 9.0)       # guard: not urgent
    builder.process("actuate", 2.0)
    builder.chain("sample", "classify")
    builder.edge("classify", "fast_filter", condition=urgent.true(), communication_time=1.0)
    builder.edge("classify", "slow_filter", condition=urgent.false())
    builder.edge("fast_filter", "actuate", communication_time=1.0)
    builder.edge("slow_filter", "actuate", communication_time=1.0)
    return builder.build(), urgent


def main() -> None:
    graph, urgent = build_application()

    # Target: two programmable processors, one ASIC, one shared bus.
    architecture = simple_architecture(
        num_programmable=2, num_hardware=1, num_buses=1, condition_broadcast_time=0.5
    )
    print("Target architecture")
    print(architecture.describe())

    # Mapping: the control chain stays on pe1, the urgent filter goes to the
    # hardware accelerator, the actuator command runs on pe2.
    mapping = Mapping(architecture)
    mapping.assign_many(architecture["pe1"], ["sample", "classify", "slow_filter"])
    mapping.assign("fast_filter", architecture["pe3"])
    mapping.assign("actuate", architecture["pe2"])
    expanded = expand_communications(graph, mapping, architecture)
    print("\nMapping")
    print(expanded.mapping.describe())

    # Schedule: per-path list schedules merged into one schedule table.
    result = ScheduleMerger(expanded.graph, expanded.mapping, architecture).merge()
    print("\nPer-path optimal delays")
    for label, schedule in sorted(result.path_schedules.items(), key=lambda kv: str(kv[0])):
        print(f"  {str(label):<10} delay {schedule.delay:g}")
    print(f"delta_M   = {result.delta_m:g}")
    print(f"delta_max = {result.delta_max:g}"
          f"  (increase {result.delay_increase_percent:.2f}%)")

    print("\nSchedule table")
    print(format_schedule_table(result.table))

    # Execute the table for both condition outcomes with the run-time simulator.
    simulator = RuntimeSimulator(expanded.graph, expanded.mapping, architecture)
    for value in (True, False):
        trace = simulator.execute(result.table, {urgent: value})
        print(f"\nExecution with urgent={value}: delay {trace.delay:g}")
        for activity in trace.activities:
            where = activity.pe.name if activity.pe else "-"
            print(f"  {activity.start:>6.2f} -> {activity.end:>6.2f}  {activity.name:<22} on {where}")

    worst = max(result.path_schedules.values(), key=lambda s: s.delay)
    print("\nGantt chart of the slowest path")
    print(render_gantt(worst, architecture, width=70))


if __name__ == "__main__":
    main()
