#!/usr/bin/env python3
"""Multi-objective exploration walkthrough: Pareto fronts + architecture sizing.

The paper fixes the architecture and minimises the single worst-case delay
``delta_max``.  This example runs the NSGA-style genetic engine on the
paper's own Fig. 1 system with *architecture sizing* enabled, so the search
may add or remove programmable processors and buses within declared bounds —
and reports the resulting Pareto front: the non-dominated trade-offs between

1. ``delta_max``        — the paper's worst-case table delay,
2. mean path delay      — how fast the *average* scenario runs,
3. processor imbalance  — how evenly the platform is loaded, and
4. architecture cost    — what the platform costs (per-PE/per-bus units).

Every run is deterministic per seed: same seed, same front.

Run it with::

    python examples/pareto.py                       # Fig. 1, default budget
    REPRO_EXAMPLE_FAST=1 python examples/pareto.py  # tiny CI run
    REPRO_EXAMPLE_SEED=7 python examples/pareto.py  # a different search seed
"""

from __future__ import annotations

import os

from repro.analysis import format_pareto_front
from repro.data import load_fig1_example
from repro.exploration import (
    ArchitectureBounds,
    ExplorationConfig,
    ExplorationProblem,
    Explorer,
)


def main() -> None:
    fast = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
    seed = int(os.environ.get("REPRO_EXAMPLE_SEED", "0") or 0)
    generations, population = (3, 8) if fast else (10, 16)

    example = load_fig1_example()
    bounds = ArchitectureBounds()  # seed + 2 processors, seed + 1 buses
    problem = ExplorationProblem(
        example.process_graph,
        example.mapping,
        example.architecture,
        name="fig1",
        bounds=bounds,
    )
    print(
        f"problem: the paper's Fig. 1 example, architecture sizing within "
        f"[{bounds.min_processors}, {problem.bounds.max_processors}] "
        f"programmable processors and "
        f"[{bounds.min_buses}, {problem.bounds.max_buses}] buses\n"
    )

    config = ExplorationConfig(
        seed=seed,
        max_cycles=generations,
        population_size=population,
        track_front=True,
    )
    explorer = Explorer(problem, config=config)
    result = explorer.explore("genetic")

    print(format_pareto_front(
        f"Pareto front after {result.cycles} generations "
        f"({result.evaluations} evaluations, "
        f"{result.cache.hits} cache hits)",
        result.front,
    ))

    fastest = min(result.front, key=lambda p: p.objectives[0])
    cheapest = min(result.front, key=lambda p: (p.objectives[3], p.objectives[0]))
    print(f"\nfastest design point : delta_max {fastest.objectives[0]:g} at "
          f"architecture cost {fastest.objectives[3]:g}")
    print(f"cheapest design point: delta_max {cheapest.objectives[0]:g} at "
          f"architecture cost {cheapest.objectives[3]:g}")
    print(f"\nseed design point    : delta_max {result.initial.delta_max:g} at "
          f"architecture cost {result.initial.architecture_cost:g}")
    print(f"best scalar candidate: delta_max {result.best.delta_max:g} "
          f"({result.improvement_percent:.2f}% better than the seed)")


if __name__ == "__main__":
    main()
