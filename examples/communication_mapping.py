#!/usr/bin/env python3
"""Communication-to-bus mapping: when routing messages beats remapping alone.

The paper treats every inter-processor connection as a communication process
mapped to a bus.  On the paper's own platform there is only one bus, so the
mapping is forced — but give the Fig. 1 system a *second* bus and the default
derivation (least-index: the first connecting bus wins) leaves it idle, with
all fourteen messages contending for one bus.

This example runs the same tabu search twice under an identical seed and
cycle budget:

1. **derived** — the explorer may remap processes and tune priorities, but
   the bus assignment stays derived (second bus idle);
2. **mapped**  — communication mapping is an explored dimension: the search
   may pin individual messages to buses (``remap_comm`` / ``swap_bus``
   moves).

The mapped run finds a strictly better worst-case delay (``delta_max``) by
routing part of the traffic over the second bus.  Every run is deterministic
per seed.

Run it with::

    python examples/communication_mapping.py
    REPRO_EXAMPLE_SEED=3 python examples/communication_mapping.py
"""

from __future__ import annotations

import os
from collections import Counter

from repro.data import load_fig1_example
from repro.exploration import ExplorationConfig, ExplorationProblem, Explorer

ENGINE = "tabu"
CYCLES = 16
NEIGHBORS = 6


def explore(example, seed: int, mapped: bool):
    problem = ExplorationProblem(
        example.process_graph,
        example.mapping,
        example.architecture,
        name="fig1-two-bus",
        map_communications=mapped,
    )
    config = ExplorationConfig(
        seed=seed, max_cycles=CYCLES, neighbors_per_cycle=NEIGHBORS
    )
    return problem, Explorer(problem, config=config).explore(ENGINE)


def main() -> None:
    seed = int(os.environ.get("REPRO_EXAMPLE_SEED", "1") or 1)
    example = load_fig1_example(num_buses=2)
    print("problem: the paper's Fig. 1 graph on a two-bus platform "
          f"({', '.join(pe.name for pe in example.architecture.buses)})")
    print(f"search : {ENGINE}, seed {seed}, {CYCLES} cycles x "
          f"{NEIGHBORS} neighbours\n")

    _, derived = explore(example, seed, mapped=False)
    problem, mapped = explore(example, seed, mapped=True)

    print(f"derived bus assignment : delta_max "
          f"{derived.initial.delta_max:g} -> {derived.best.delta_max:g} "
          f"(bus imbalance {derived.best.bus_imbalance:.3f})")
    print(f"explored bus assignment: delta_max "
          f"{mapped.initial.delta_max:g} -> {mapped.best.delta_max:g} "
          f"(bus imbalance {mapped.best.bus_imbalance:.3f})")

    realised = problem.communications_for(mapped.best_candidate)
    per_bus = Counter(realised.values())
    pins = mapped.best_candidate.communication_dict
    print(f"\nbest mapped design point routes "
          f"{', '.join(f'{count} messages over {bus}' for bus, count in sorted(per_bus.items()))}")
    print(f"explicit pins ({len(pins)}):")
    for message, bus_name in sorted(pins.items()):
        print(f"  {message:<10} -> {bus_name}")

    if mapped.best.cost < derived.best.cost:
        gain = derived.best.cost - mapped.best.cost
        print(f"\nexploring the communication mapping beats the derived "
              f"default by {gain:g} time units on delta_max")
    else:
        print("\n(no win at this seed — try the default seed 1, the one "
              "frozen in BENCH_core.json)")


if __name__ == "__main__":
    main()
