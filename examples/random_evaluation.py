#!/usr/bin/env python3
"""Randomised evaluation of the schedule-merging heuristic (the shape of Fig. 5/6).

Generates random conditional process graphs with the parameters of the paper's
evaluation (graph sizes, numbers of alternative paths, uniform and exponential
execution times, architectures of one ASIC plus several processors and buses),
merges their per-path schedules, and reports

* the average percentage increase of the worst-case delay ``delta_max`` over
  the ideal per-path delay ``delta_M`` (Fig. 5), and
* the average wall-clock time of the schedule-merging step (Fig. 6).

Run it with::

    python examples/random_evaluation.py                 # small default sweep
    REPRO_EXAMPLE_FAST=1 python examples/random_evaluation.py   # tiny CI sweep
    REPRO_GRAPHS_PER_SETTING=8 python examples/random_evaluation.py
"""

from __future__ import annotations

import os
import time

from repro.analysis import aggregate, format_series
from repro.generator import RandomSystemGenerator, paper_experiment_configs
from repro.scheduling import ScheduleMerger


def run_sweep(sizes, paths_options, graphs_per_setting):
    increase_series = {}
    time_series = {}
    for nodes in sizes:
        configs = paper_experiment_configs(
            nodes, graphs_per_setting, paths_options=paths_options, base_seed=nodes
        )
        by_paths = {}
        times_by_paths = {}
        for config in configs:
            system = RandomSystemGenerator(config).generate()
            merger = ScheduleMerger(
                system.graph, system.expanded_mapping, system.architecture
            )
            started = time.perf_counter()
            result = merger.merge()
            elapsed = time.perf_counter() - started
            by_paths.setdefault(config.alternative_paths, []).append(result)
            times_by_paths.setdefault(config.alternative_paths, []).append(elapsed)
        label = f"{nodes} nodes"
        increase_series[label] = {
            paths: aggregate(results).average_increase_percent
            for paths, results in sorted(by_paths.items())
        }
        time_series[label] = {
            paths: sum(samples) / len(samples)
            for paths, samples in sorted(times_by_paths.items())
        }
        zero_fractions = {
            paths: aggregate(results).zero_increase_fraction
            for paths, results in sorted(by_paths.items())
        }
        print(f"finished {label}: zero-increase fraction per path count "
              f"{ {p: round(f, 2) for p, f in zero_fractions.items()} }")
    return increase_series, time_series


def main() -> None:
    fast = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
    graphs_per_setting = int(os.environ.get("REPRO_GRAPHS_PER_SETTING", "0") or 0)
    if fast:
        sizes = [20]
        paths_options = [4, 6]
        graphs_per_setting = graphs_per_setting or 1
    else:
        sizes = [60, 80, 120]
        paths_options = [10, 12, 18, 24, 32]
        graphs_per_setting = graphs_per_setting or 2

    print(f"sweep: sizes={sizes}, paths={paths_options}, "
          f"{graphs_per_setting} graph(s) per setting\n")
    increase_series, time_series = run_sweep(sizes, paths_options, graphs_per_setting)

    print()
    print(format_series(
        "Increase of delta_max over delta_M (%) — the shape of Fig. 5",
        "paths",
        increase_series,
    ))
    print()
    print(format_series(
        "Average execution time of schedule merging (s) — the shape of Fig. 6",
        "paths",
        time_series,
        value_format="{:.3f}",
    ))


if __name__ == "__main__":
    main()
