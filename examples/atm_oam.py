#!/usr/bin/env python3
"""The ATM switch OAM block case study (the paper's Table 2).

Evaluates the worst-case delay of the three OAM operating modes on the ten
architecture variants of the paper (one or two 486/Pentium processors, one or
two memory modules) and prints the resulting table next to the paper's
published values, together with the architecture-selection conclusions the
paper draws from it.

Run it with::

    python examples/atm_oam.py            # full table (ten architectures)
    REPRO_EXAMPLE_FAST=1 python examples/atm_oam.py   # reduced variant for CI
"""

from __future__ import annotations

import os

from repro.atm import (
    PAPER_TABLE2,
    build_all_modes,
    evaluate_table2,
    table2_architecture_configs,
    table2_delays,
)
from repro.analysis import format_table
from repro.graph import PathEnumerator


def main() -> None:
    fast = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
    modes = build_all_modes()

    print("OAM block operating modes")
    for mode in modes:
        paths = PathEnumerator(mode.graph).count()
        print(f"  mode {mode.index}: {len(mode.graph.ordinary_processes)} processes, "
              f"{paths} alternative paths "
              f"({len(mode.memory_processes)} memory accesses)")

    configs = table2_architecture_configs()
    if fast:
        configs = [c for c in configs if len(c.processors) == 1 or c.memories == 1]
        modes = modes[:2]
        print("\n(fast mode: evaluating a subset of architectures/modes)")

    evaluations = evaluate_table2(modes, configs)
    delays = table2_delays(evaluations)

    headers = ["architecture"] + [f"mode {m}" for m in sorted(delays)] + [
        f"paper mode {m}" for m in sorted(delays)
    ]
    rows = []
    for config in configs:
        row = [config.label]
        row += [round(delays[m][config.label], 1) for m in sorted(delays)]
        row += [PAPER_TABLE2[m][config.label] for m in sorted(delays)]
        rows.append(row)
    print()
    print(format_table("Worst-case delays of the OAM block (ns)", headers, rows))

    print()
    print("Mapping strategies selected for each best schedule:")
    for mode_index, row in sorted(evaluations.items()):
        for label, evaluation in row.items():
            print(f"  mode {mode_index} on {label:<22} cpu={evaluation.cpu_strategy:<6} "
                  f"memory={evaluation.memory_strategy}")

    if not fast:
        print()
        print("Conclusions (matching Section 6 of the paper):")
        d = delays
        print(f"  * a faster processor always helps, e.g. mode 1: "
              f"{d[1]['1P/1M 486']:.0f} -> {d[1]['1P/1M Pentium']:.0f} ns")
        print(f"  * a second processor never helps mode 2 "
              f"({d[2]['1P/1M 486']:.0f} ns on one or two 486s)")
        print(f"  * a second processor helps mode 1 "
              f"({d[1]['1P/1M 486']:.0f} -> {d[1]['2P/1M 2x486']:.0f} ns with two 486s)")
        print(f"  * in mode 3 a second 486 helps ({d[3]['1P/1M 486']:.0f} -> "
              f"{d[3]['2P/1M 2x486']:.0f} ns) but a second Pentium does not "
              f"({d[3]['1P/1M Pentium']:.0f} ns either way)")
        print(f"  * a second memory module only pays off for mode 1 on two Pentiums "
              f"({d[1]['2P/1M 2xPentium']:.0f} -> {d[1]['2P/2M 2xPentium']:.0f} ns)")


if __name__ == "__main__":
    main()
