#!/usr/bin/env python3
"""Design-space exploration walkthrough: optimising the mapping the paper assumes.

The paper takes the process-to-processor mapping as an input produced by an
upstream partitioning step (Eles et al., 1997 — simulated annealing / tabu
search).  This example closes that loop with ``repro.exploration``: starting
from the random generator's seed mapping it

1. scores the seed design point (worst-case delay ``delta_max`` of the merged
   schedule table, mean path delay, processor load balance),
2. runs tabu search and simulated annealing over remap / swap / priority
   moves — both engines share one content-hash evaluation cache, so design
   points revisited by the second engine are free, and
3. prints the best candidate of each engine and its trajectory.

Run it with::

    python examples/exploration.py                    # 40-node default
    REPRO_EXAMPLE_FAST=1 python examples/exploration.py   # tiny CI run
    REPRO_EXPLORE_WORKERS=4 python examples/exploration.py  # parallel pool
"""

from __future__ import annotations

import os

from repro.analysis import format_exploration_comparison, format_trajectory
from repro.exploration import (
    CostWeights,
    EvaluationPool,
    ExplorationConfig,
    ExplorationProblem,
    Explorer,
)
from repro.generator import generate_system


def main() -> None:
    fast = bool(os.environ.get("REPRO_EXAMPLE_FAST"))
    workers = int(os.environ.get("REPRO_EXPLORE_WORKERS", "1") or 1)
    nodes, paths, cycles = (16, 2, 5) if fast else (40, 8, 25)

    system = generate_system(nodes, paths, seed=0)
    problem = ExplorationProblem.from_system(system)
    print(f"problem: {len(problem.movable_processes)} processes on "
          f"{len(problem.processor_names)} processors, seed mapping from the "
          "random generator\n")

    # delta_max is the paper's metric; a pinch of load balance breaks ties
    # between mappings with equal worst-case delay.
    config = ExplorationConfig(
        seed=0,
        max_cycles=cycles,
        neighbors_per_cycle=6,
        weights=CostWeights(delta_max=1.0, load_imbalance=1.0),
    )
    pool = (
        EvaluationPool(problem, config.weights, workers=workers)
        if workers > 1
        else None
    )
    try:
        explorer = Explorer(problem, config=config, pool=pool)
        results = [explorer.explore(engine) for engine in ("tabu", "anneal")]
    finally:
        if pool is not None:
            pool.close()

    print(format_exploration_comparison(
        "tabu search vs simulated annealing (shared evaluation cache)", results
    ))
    for result in results:
        print()
        print(format_trajectory(f"{result.engine} trajectory", result.trajectory))

    best = min(results, key=lambda r: r.best.cost)
    print(f"\nbest design point ({best.engine}): "
          f"delta_max {best.initial.delta_max:g} -> {best.best.delta_max:g}, "
          f"load imbalance {best.best.load_imbalance:.2f}, "
          f"priority function {best.best_candidate.priority_function!r}")
    stats = explorer.evaluator.stats
    print(f"evaluations: {stats.misses} merges for "
          f"{stats.hits + stats.misses} requests "
          f"({100.0 * stats.hit_rate:.0f}% served from the cache)")


if __name__ == "__main__":
    main()
