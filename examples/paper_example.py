#!/usr/bin/env python3
"""The paper's worked example (Fig. 1, Fig. 2, Fig. 4 and Table 1).

Loads the conditional process graph of Fig. 1 (17 processes, 14 inter-processor
communications, 3 conditions, two programmable processors, one ASIC, one bus),
schedules each of its six alternative paths, merges them into the global
schedule table, prints the table (the shape of Table 1), the decision tree
explored by the merging algorithm (Fig. 2) and Gantt charts of selected path
schedules (Fig. 4), and finally validates the table with the run-time simulator.

Run it with::

    python examples/paper_example.py
"""

from __future__ import annotations

from repro import RuntimeSimulator, ScheduleMerger
from repro.analysis import (
    format_condition_rows,
    format_schedule_table,
    render_gantt,
    schedule_table_summary,
)
from repro.data import PAPER_PATH_DELAYS, PAPER_WORST_CASE_DELAY, load_fig1_example
from repro.simulation import validate_merge_result


def main() -> None:
    example = load_fig1_example()
    graph = example.graph
    mapping = example.expanded_mapping

    print("=" * 72)
    print("Fig. 1 system")
    print("=" * 72)
    print(example.architecture.describe())
    print()
    print(f"{len(example.process_graph.ordinary_processes)} ordinary processes, "
          f"{len(example.expanded.communications)} communication processes, "
          f"conditions {[str(c) for c in graph.conditions]}")

    result = ScheduleMerger(graph, mapping, example.architecture).merge()

    print()
    print("=" * 72)
    print("Per-path optimal schedules (the lengths listed next to Fig. 2)")
    print("=" * 72)
    print(f"{'path':<14} {'this reproduction':>18} {'paper':>8}")
    for label, schedule in sorted(
        result.path_schedules.items(), key=lambda kv: -kv[1].delay
    ):
        paper = PAPER_PATH_DELAYS.get(str(label), float("nan"))
        print(f"{str(label):<14} {schedule.delay:>18g} {paper:>8g}")
    print(f"\ndelta_M   = {result.delta_m:g}")
    print(f"delta_max = {result.delta_max:g} "
          f"(paper: {PAPER_WORST_CASE_DELAY:g}; the intra-processor edges of "
          "Fig. 1 are not published, so absolute values differ)")

    print()
    print("=" * 72)
    print("Decision tree explored during schedule merging (Fig. 2)")
    print("=" * 72)
    print(result.trace.render())
    print(f"\nback-steps: {result.trace.back_steps}, "
          f"conflicts resolved: {result.trace.conflicts_resolved}")

    print()
    print("=" * 72)
    print("Schedule table (the shape of Table 1)")
    print("=" * 72)
    summary = schedule_table_summary(result.table)
    print(f"{summary['rows']:.0f} rows, {summary['columns']:.0f} columns, "
          f"{summary['entries']:.0f} activation times")
    print()
    selected_rows = ["P1", "P2", "P10", "P11", "P14", "P17"]
    print(format_schedule_table(result.table, process_order=selected_rows))
    print()
    print("Condition broadcast rows:")
    print(format_condition_rows(result.table))

    print()
    print("=" * 72)
    print("Gantt charts of two alternative paths (the shape of Fig. 4)")
    print("=" * 72)
    ordered = sorted(result.path_schedules.items(), key=lambda kv: -kv[1].delay)
    for label, schedule in ordered[:2]:
        print()
        print(render_gantt(schedule, example.architecture, width=70,
                           title=f"optimal schedule of path {label} (delay {schedule.delay:g})"))

    print()
    print("=" * 72)
    print("Validation")
    print("=" * 72)
    report = validate_merge_result(graph, mapping, result, example.architecture)
    print(f"checked {report.paths_checked} alternative paths; "
          f"simulated worst case {report.worst_case_delay:g}")
    simulator = RuntimeSimulator(graph, mapping, example.architecture)
    for label, delay in sorted(simulator.all_delays(result.table).items()):
        print(f"  table-driven execution of {label:<12} completes at {delay:g}")


if __name__ == "__main__":
    main()
